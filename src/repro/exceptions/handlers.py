"""Handler association.

The paper's key simplifying assumption (Section 3.3): *every* participating
object has a handler for *every* exception declared in a given action —
eliminating the CR algorithm's "third source" of exceptions (re-raising
after failed lookup) and the domino effect.  :class:`HandlerSet` enforces
this completeness; :class:`ReducedHandlerSet` deliberately relaxes it to
model the CR baseline's per-participant reduced trees.

Handlers follow the termination model (Section 3.1): they take over the
participant's duties and finish the action either successfully or by
signalling a failure exception to the containing action.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.exceptions.tree import ExceptionClass, ResolutionTree


class HandlerOutcome(enum.Enum):
    """What a handler achieved, per the termination model."""

    #: The handler recovered the objects; the action completes normally.
    COMPLETED = "completed"
    #: Recovery failed; an exception is signalled to the containing action.
    SIGNAL = "signal"


@dataclass(frozen=True)
class HandlerResult:
    """Result of running one handler.

    Attributes:
        outcome: completed or signalling.
        signal: the exception signalled to the containing action (only for
            ``SIGNAL`` outcomes; for abortion handlers this is the
            "last-will" exception, possibly ``None``).
    """

    outcome: HandlerOutcome
    signal: Optional[ExceptionClass] = None

    def __post_init__(self) -> None:
        if self.outcome is HandlerOutcome.SIGNAL and self.signal is None:
            raise ValueError("SIGNAL outcome requires a signal exception")
        if self.outcome is HandlerOutcome.COMPLETED and self.signal is not None:
            raise ValueError("COMPLETED outcome must not carry a signal")


#: A handler body: receives (participant, exception class), returns a result.
#: The participant is typed as ``object`` to avoid a dependency cycle with
#: repro.core; concrete handlers downcast as needed.
HandlerBody = Callable[[object, ExceptionClass], HandlerResult]


@dataclass(frozen=True)
class Handler:
    """An exception handler with a simulated execution duration.

    Attributes:
        body: the handling logic.
        duration: virtual time the handler takes to run; contributes to
            recovery-latency measurements (experiments E9/E15).
    """

    body: HandlerBody
    duration: float = 0.0

    @staticmethod
    def completing(duration: float = 0.0) -> "Handler":
        """A handler that always recovers successfully."""
        return Handler(
            body=lambda participant, exception: HandlerResult(
                HandlerOutcome.COMPLETED
            ),
            duration=duration,
        )

    @staticmethod
    def signalling(signal: ExceptionClass, duration: float = 0.0) -> "Handler":
        """A handler that always signals ``signal`` to the containing action."""
        return Handler(
            body=lambda participant, exception: HandlerResult(
                HandlerOutcome.SIGNAL, signal
            ),
            duration=duration,
        )

    def run(self, participant: object, exception: ExceptionClass) -> HandlerResult:
        result = self.body(participant, exception)
        if not isinstance(result, HandlerResult):
            raise TypeError(
                f"handler returned {result!r}, expected HandlerResult"
            )
        return result


class IncompleteHandlerSetError(ValueError):
    """A HandlerSet does not cover every exception of the action's tree."""


class HandlerSet:
    """A complete exception → handler binding for one participant.

    Completeness against an action's tree is checked with
    :meth:`validate_complete`, which the action manager calls when the
    participant is registered — enforcing the paper's assumption statically,
    as Section 3.1 recommends.
    """

    def __init__(self, handlers: Mapping[ExceptionClass, Handler]) -> None:
        self._handlers = dict(handlers)

    @classmethod
    def completing_all(
        cls, tree: ResolutionTree, duration: float = 0.0
    ) -> "HandlerSet":
        """A set with a successful default handler for every tree member.

        One (immutable) handler instance is shared across all members —
        large generated scenarios build thousands of these bindings, and
        the per-member Handler + closure allocation dominated scenario
        construction time.
        """
        handler = Handler.completing(duration)
        return cls({exc: handler for exc in tree.members})

    def with_override(
        self, exception: ExceptionClass, handler: Handler
    ) -> "HandlerSet":
        """A copy of this set with one binding replaced."""
        handlers = dict(self._handlers)
        handlers[exception] = handler
        return HandlerSet(handlers)

    def validate_complete(self, tree: ResolutionTree) -> None:
        missing = sorted(
            exception.name()
            for exception in tree.members
            if exception not in self._handlers
        )
        if missing:
            raise IncompleteHandlerSetError(
                f"missing handlers for: {', '.join(missing)}"
            )

    def lookup(self, exception: ExceptionClass) -> Handler:
        try:
            return self._handlers[exception]
        except KeyError:
            raise KeyError(f"no handler bound for {exception.name()}") from None

    def __contains__(self, exception: ExceptionClass) -> bool:
        return exception in self._handlers

    def covered(self) -> set[ExceptionClass]:
        return set(self._handlers)


class ReducedHandlerSet:
    """A *partial* handler binding — the CR baseline's reduced tree.

    In the Campbell–Randell mechanism each participant has handlers for
    only a subset of the action's exceptions and, when informed of an
    exception outside its subset, raises the nearest covering exception it
    *does* handle (Section 3.3).  The subset must contain the tree root so
    a cover always exists.
    """

    def __init__(
        self, tree: ResolutionTree, handlers: Mapping[ExceptionClass, Handler]
    ) -> None:
        if tree.root not in handlers:
            raise IncompleteHandlerSetError(
                "a reduced handler set must at least handle the root exception"
            )
        unknown = [exc.name() for exc in handlers if exc not in tree]
        if unknown:
            raise ValueError(f"handlers for undeclared exceptions: {unknown}")
        self.tree = tree
        self._handlers = dict(handlers)

    def covered(self) -> set[ExceptionClass]:
        return set(self._handlers)

    def handles(self, exception: ExceptionClass) -> bool:
        return exception in self._handlers

    def cover_for(self, exception: ExceptionClass) -> ExceptionClass:
        """The exception this participant raises when told of ``exception``.

        Returns ``exception`` itself when handled directly, else the nearest
        handled ancestor — the CR re-raising rule that produces the domino
        chains of Section 3.3.
        """
        return self.tree.cover_within(set(self._handlers), exception)

    def lookup(self, exception: ExceptionClass) -> Handler:
        return self._handlers[self.cover_for(exception)]
