"""Exception declarations.

The paper (Section 3.2) declares action exceptions as classes related by
subtyping, e.g.::

    class universal_exception {}
    class emergency_engine_loss_exception : universal_exception {}
    class left_engine_exception : emergency_engine_loss_exception {}

We mirror this directly: action exceptions are Python classes deriving from
:class:`ActionException`, and a resolution tree can be built straight from
the class hierarchy (:meth:`repro.exceptions.tree.ResolutionTree.from_classes`).

Two exceptions have special protocol meaning:

* :class:`AbortionException` — raised inside a nested action to abort it
  (Figure 1(b) and Section 4.1);
* :class:`ActionFailureException` — signalled to the containing action when
  an action cannot fulfil its specification (Section 3.1).
"""

from __future__ import annotations

import sys


class ActionException(Exception):
    """Base class of all exceptions declared for CA actions.

    Subclasses are *declarations*; instances are *raised occurrences*.
    Resolution operates on classes, so equality/ordering in protocol data
    structures always uses the class, never the instance.
    """

    #: Human-readable description, shown in traces.
    description: str = ""

    @classmethod
    def name(cls) -> str:
        return cls.__name__


class UniversalException(ActionException):
    """The root of every resolution tree.

    The handler for the universal exception is the last resort: it covers
    any combination of concurrently raised exceptions.
    """

    description = "root of the exception tree; covers everything"


class AbortionException(ActionException):
    """Raised within a nested action to abort it.

    Every participant of a nested CA action must provide an *abortion
    handler* for this exception (Section 4.1); abortion handlers undo the
    nested action's effects and may signal one exception to the containing
    action ("last-will" recovery).
    """

    description = "abort the enclosing nested action"


class ActionFailureException(ActionException):
    """Signalled to the containing action when recovery fails.

    Corresponds to the paper's "failure exception ... raised if no
    corresponding handlers are found" / "completes the action ... by
    signalling a failure exception to the containing action".
    """

    description = "the action failed to meet its specification"


def declare_exception(
    name: str,
    parent: type[ActionException] = UniversalException,
    description: str = "",
) -> type[ActionException]:
    """Dynamically declare a new action exception class.

    Workload generators use this to build arbitrary exception hierarchies
    (chains, bushy trees, random trees) without writing a class statement
    per node.

    Args:
        name: class name of the new exception; must be a valid identifier.
        parent: the exception this one specialises (its parent in the tree).
        description: optional human-readable note.

    Returns:
        The freshly created exception class.
    """
    if not name.isidentifier():
        raise ValueError(f"exception name must be an identifier: {name!r}")
    if not issubclass(parent, ActionException):
        raise TypeError(f"parent must derive from ActionException: {parent!r}")
    cls = type(name, (parent,), {"description": description, "_dynamic": True})
    # Register on this module so instances pickle (the TCP transport's
    # pickle frame mode sends raised occurrences across real process
    # boundaries).  Redeclaring a name rebinds it — only the newest class
    # of that name is picklable — and generated names can never shadow a
    # statically declared symbol.
    module = sys.modules[__name__]
    existing = getattr(module, name, None)
    if existing is None or getattr(existing, "_dynamic", False):
        cls.__module__ = __name__
        setattr(module, name, cls)
    return cls
