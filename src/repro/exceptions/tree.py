"""The exception resolution tree.

The tree "includes all exceptions associated with the action and imposes a
partial order on them in such a way that a higher exception has a handler
which is intended to handle any lower level exception" (Section 2.2).
Resolving a set of concurrently raised exceptions means finding the lowest
exception that covers all of them — the least common ancestor.

Trees can be declared explicitly (edge map) or derived from a Python class
hierarchy rooted at :class:`~repro.exceptions.declarations.UniversalException`
(the paper's object-oriented formulation in Section 3.2).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.exceptions.declarations import ActionException, UniversalException

ExceptionClass = type[ActionException]


class TreeValidationError(ValueError):
    """The declared structure is not a valid resolution tree."""


class ResolutionTree:
    """A rooted tree over exception classes supporting LCA resolution."""

    def __init__(
        self,
        root: ExceptionClass,
        parents: Mapping[ExceptionClass, ExceptionClass] | None = None,
    ) -> None:
        """Build a tree from an explicit child → parent map.

        Args:
            root: the unique top exception (usually
                :class:`UniversalException` or a subclass standing in for it).
            parents: map from every non-root member to its parent.  ``root``
                must not appear as a key.  May be ``None`` for a
                single-node tree.

        Raises:
            TreeValidationError: on cycles, unreachable nodes, or a parented
                root.
        """
        self.root = root
        self._parent: dict[ExceptionClass, ExceptionClass] = dict(parents or {})
        if root in self._parent:
            raise TreeValidationError(f"root {root.name()} must not have a parent")
        self._depth: dict[ExceptionClass, int] = {root: 0}
        self._validate_and_index()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_classes(cls, root: ExceptionClass) -> "ResolutionTree":
        """Derive the tree from the Python class hierarchy under ``root``.

        Follows single-inheritance ``__subclasses__`` chains recursively, so
        declaring exceptions by subclassing *is* declaring the tree — the
        paper's OO formulation.
        """
        parents: dict[ExceptionClass, ExceptionClass] = {}

        def walk(node: ExceptionClass) -> None:
            for child in node.__subclasses__():
                if child in parents:
                    raise TreeValidationError(
                        f"{child.name()} reachable twice; multiple inheritance "
                        "is not a tree"
                    )
                parents[child] = node
                walk(child)

        walk(root)
        return cls(root, parents)

    @classmethod
    def chain(cls, exceptions: Sequence[ExceptionClass]) -> "ResolutionTree":
        """Build a directed chain ``e[0] ← e[1] ← ... ← e[k]``.

        ``exceptions[0]`` is the root.  This is the shape used by the
        Section 3.3 domino-effect example.
        """
        if not exceptions:
            raise TreeValidationError("chain needs at least one exception")
        parents = {
            child: parent for parent, child in zip(exceptions, exceptions[1:])
        }
        return cls(exceptions[0], parents)

    def _validate_and_index(self) -> None:
        for node in self._parent:
            seen: set[ExceptionClass] = set()
            cursor: ExceptionClass | None = node
            while cursor is not None and cursor != self.root:
                if cursor in seen:
                    raise TreeValidationError(f"cycle through {cursor.name()}")
                seen.add(cursor)
                cursor = self._parent.get(cursor)
            if cursor is None:
                raise TreeValidationError(
                    f"{node.name()} does not reach the root {self.root.name()}"
                )
        # Depth index (children sorted for determinism of iteration orders).
        for node in self._parent:
            self._depth[node] = len(self.path_to_root(node)) - 1

    # -- queries -----------------------------------------------------------------

    @property
    def members(self) -> set[ExceptionClass]:
        """All exception classes in the tree, root included."""
        return {self.root, *self._parent}

    def __contains__(self, exception: ExceptionClass) -> bool:
        return exception == self.root or exception in self._parent

    def __len__(self) -> int:
        return 1 + len(self._parent)

    def parent(self, exception: ExceptionClass) -> ExceptionClass | None:
        """Parent of ``exception``; ``None`` for the root."""
        self._require(exception)
        return self._parent.get(exception)

    def depth(self, exception: ExceptionClass) -> int:
        """Distance from the root (root has depth 0)."""
        self._require(exception)
        return self._depth[exception]

    def path_to_root(self, exception: ExceptionClass) -> list[ExceptionClass]:
        """``[exception, parent, ..., root]``."""
        self._require(exception)
        path = [exception]
        while path[-1] != self.root:
            path.append(self._parent[path[-1]])
        return path

    def covers(self, upper: ExceptionClass, lower: ExceptionClass) -> bool:
        """True if ``upper`` is an ancestor of, or equal to, ``lower``.

        A covering exception's handler "is intended to handle any lower
        level exception" (Section 2.2).
        """
        return upper in self.path_to_root(lower)

    def resolve(self, raised: Iterable[ExceptionClass]) -> ExceptionClass:
        """Least common ancestor of all ``raised`` exceptions.

        This is the resolution function of the paper: the single exception
        whose handler covers every concurrently raised one.

        Raises:
            ValueError: if ``raised`` is empty.
            KeyError: if any raised exception is not declared in the tree.
        """
        classes = list(dict.fromkeys(raised))  # dedupe, keep order
        if not classes:
            raise ValueError("cannot resolve an empty set of exceptions")
        paths = [self.path_to_root(exception) for exception in classes]
        common = set(paths[0])
        for path in paths[1:]:
            common &= set(path)
        # The LCA is the deepest node on every path; paths list deepest
        # first, so scan the first path in order.
        for node in paths[0]:
            if node in common:
                return node
        # Unreachable: the root is always common.
        raise AssertionError("resolution tree has no common root")

    def cover_within(
        self, subset: set[ExceptionClass], exception: ExceptionClass
    ) -> ExceptionClass:
        """Nearest ancestor-or-self of ``exception`` inside ``subset``.

        Used by the Campbell–Randell baseline: a participant that has
        handlers only for ``subset`` finds the exception *it* can raise for
        a given one (Section 3.3's reduced trees).  ``subset`` must contain
        the root for this to be total.
        """
        for node in self.path_to_root(exception):
            if node in subset:
                return node
        raise KeyError(
            f"subset has no cover for {exception.name()}; must include the root"
        )

    def _require(self, exception: ExceptionClass) -> None:
        if exception not in self:
            name = getattr(exception, "__name__", repr(exception))
            raise KeyError(f"{name} is not declared in this tree")

    def __repr__(self) -> str:
        return (
            f"ResolutionTree(root={self.root.name()}, size={len(self)})"
        )


def default_tree() -> ResolutionTree:
    """A one-node tree containing only :class:`UniversalException`."""
    return ResolutionTree(UniversalException)
