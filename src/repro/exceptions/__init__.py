"""The object-oriented exception model of the paper.

Exceptions are declared as Python classes (the paper's Section 3.2:
"exceptions are classes and declared by subtyping").  A
:class:`~repro.exceptions.tree.ResolutionTree` arranges the exceptions an
action declares into the partial order used to resolve concurrently raised
exceptions; :class:`~repro.exceptions.context.ExceptionContextStack` models
the nesting of exception contexts that follows the nesting of CA actions;
:class:`~repro.exceptions.handlers.HandlerSet` binds handlers to exceptions
at object level.
"""

from repro.exceptions.attachment import AttachmentLevel, LayeredHandlers
from repro.exceptions.declarations import (
    AbortionException,
    ActionException,
    ActionFailureException,
    UniversalException,
    declare_exception,
)
from repro.exceptions.context import ExceptionContext, ExceptionContextStack
from repro.exceptions.handlers import HandlerOutcome, HandlerSet, ReducedHandlerSet
from repro.exceptions.tree import ResolutionTree, TreeValidationError

__all__ = [
    "AbortionException",
    "ActionException",
    "ActionFailureException",
    "AttachmentLevel",
    "ExceptionContext",
    "ExceptionContextStack",
    "HandlerOutcome",
    "HandlerSet",
    "LayeredHandlers",
    "ReducedHandlerSet",
    "ResolutionTree",
    "TreeValidationError",
    "UniversalException",
    "declare_exception",
]
