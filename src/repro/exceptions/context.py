"""Exception contexts.

"Exception contexts [are] regions in which the same exceptions are treated
in the same way" (Section 2.1).  In the CA-action model a participating
object enters a new exception context whenever it enters an action, and the
nesting of actions causes the nesting of contexts (Section 3.1).  The stack
here is the paper's ``SA_i``: it "stores the exception context and the
exception tree corresponding to each of nested CA actions" (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions.tree import ExceptionClass, ResolutionTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exceptions.handlers import HandlerSet


@dataclass
class ExceptionContext:
    """One level of the context stack: an action with its tree and handlers.

    Attributes:
        action_name: the CA action this context belongs to.
        tree: the action's resolution tree.
        handlers: this participant's handlers for the action's exceptions.
    """

    action_name: str
    tree: ResolutionTree
    handlers: "HandlerSet"
    #: Exceptions raised locally in this context so far (at most one is
    #: allowed by the Section 4.1 assumption; tracked to enforce it).
    raised: list[ExceptionClass] = field(default_factory=list)


class ContextError(RuntimeError):
    """Misuse of the context stack (pop of wrong action, empty stack...)."""


class ExceptionContextStack:
    """The per-participant stack of nested exception contexts (``SA_i``)."""

    def __init__(self) -> None:
        self._stack: list[ExceptionContext] = []

    def push(self, context: ExceptionContext) -> None:
        """Enter a (possibly nested) action's exception context."""
        self._stack.append(context)

    def pop(self, action_name: str) -> ExceptionContext:
        """Leave the innermost context; must match ``action_name``."""
        if not self._stack:
            raise ContextError(f"no context to pop for action {action_name}")
        top = self._stack[-1]
        if top.action_name != action_name:
            raise ContextError(
                f"context mismatch: popping {action_name} but innermost is "
                f"{top.action_name}"
            )
        return self._stack.pop()

    @property
    def active(self) -> ExceptionContext | None:
        """The innermost context — the participant's *active* action."""
        return self._stack[-1] if self._stack else None

    def find(self, action_name: str) -> ExceptionContext | None:
        """The context for ``action_name``, if this object has entered it."""
        for context in reversed(self._stack):
            if context.action_name == action_name:
                return context
        return None

    def depth_below(self, action_name: str) -> int:
        """How many contexts are nested strictly inside ``action_name``.

        Zero means ``action_name`` is the active action.  Used to decide
        whether an incoming protocol message for action ``A`` finds this
        object "in the action nested within A" (Section 4.2).
        """
        for index, context in enumerate(reversed(self._stack)):
            if context.action_name == action_name:
                return index
        raise ContextError(f"not inside action {action_name}")

    def inner_chain(self, action_name: str) -> list[ExceptionContext]:
        """Contexts nested inside ``action_name``, innermost first.

        This is the abortion order of Section 4.1: "it must execute abortion
        handlers in the order (i+k), (i+k-1), ..., (i+1)".
        """
        depth = self.depth_below(action_name)
        return list(reversed(self._stack[len(self._stack) - depth:]))

    def entered(self, action_name: str) -> bool:
        return self.find(action_name) is not None

    def __len__(self) -> int:
        return len(self._stack)

    def names(self) -> list[str]:
        """Action names outermost-first."""
        return [context.action_name for context in self._stack]
