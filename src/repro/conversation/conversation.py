"""The conversation controller.

Processes enter asynchronously (each with its own entry delay), save
recovery points, run their current alternate, and synchronize at the test
line.  If every acceptance test passes the conversation commits and all
processes leave *together*; if any fails, every process rolls back and
switches to its next alternate.  Running out of alternates raises a
failure to the environment — exactly the behaviour a CA action would map
to signalling a failure exception.

Alternates run in virtual time on the simulator, so conversations compose
with everything else in a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.conversation.acceptance import AcceptanceTest
from repro.conversation.recovery_point import RecoveryPoint
from repro.simkernel.scheduler import Simulator
from repro.simkernel.trace import TraceRecorder
from repro.transactions.atomic_object import AtomicObject

#: An alternate's body mutates the process state (and shared objects).
AlternateBody = Callable[[dict[str, Any], dict[str, AtomicObject]], None]


@dataclass(frozen=True)
class Alternate:
    """One try block of a process: a body plus its execution time."""

    body: AlternateBody
    duration: float = 1.0


@dataclass
class ConversationProcess:
    """One process taking part in a conversation."""

    name: str
    alternates: list[Alternate]
    acceptance: AcceptanceTest
    state: dict[str, Any] = field(default_factory=dict)
    entry_delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.alternates:
            raise ValueError(f"process {self.name} needs at least one alternate")


class ConversationFailure(RuntimeError):
    """All alternates exhausted without passing every acceptance test."""


class Conversation:
    """Coordinates joint backward recovery of a set of processes."""

    def __init__(
        self,
        sim: Simulator,
        processes: list[ConversationProcess],
        shared: dict[str, AtomicObject] | None = None,
        trace: TraceRecorder | None = None,
        name: str = "conversation",
    ) -> None:
        if not processes:
            raise ValueError("a conversation needs at least one process")
        names = [p.name for p in processes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate process names")
        self.sim = sim
        self.processes = processes
        self.shared = dict(shared or {})
        self.trace = trace if trace is not None else TraceRecorder()
        self.name = name
        self.attempt = 0
        self.accepted = False
        self.failed = False
        #: (attempt, process name, passed) per test-line evaluation.
        self.test_log: list[tuple[int, str, bool]] = []
        self._recovery: dict[str, RecoveryPoint] = {}
        #: One snapshot of the shared atomic objects, captured when the
        #: FIRST process enters.  Per-process snapshots of shared state
        #: would be wrong: a late entrant would capture (and a rollback
        #: would resurrect) mutations another process already made.
        self._shared_recovery: Optional[RecoveryPoint] = None
        self._at_test_line: set[str] = set()
        self._entered: set[str] = set()
        #: Called when the conversation commits or fails definitively.
        self.on_finish: Optional[Callable[[bool], None]] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Schedule every process's (asynchronous) entry."""
        for process in self.processes:
            self.sim.schedule(
                process.entry_delay,
                lambda p=process: self._enter(p),
                label=f"{self.name}:enter:{process.name}",
            )

    def _enter(self, process: ConversationProcess) -> None:
        self._entered.add(process.name)
        # Save the recovery point on entry — the defining move of the
        # conversation scheme.  Process-private state is per-process; the
        # shared atomic objects are captured exactly once, at the
        # conversation's first entry.
        if self._shared_recovery is None:
            self._shared_recovery = RecoveryPoint.capture(
                self.sim.now, {}, self.shared
            )
        self._recovery[process.name] = RecoveryPoint.capture(
            self.sim.now, process.state
        )
        self.trace.record(self.sim.now, "conv.enter", process.name, attempt=0)
        self._run_alternate(process)

    def _run_alternate(self, process: ConversationProcess) -> None:
        alternate = process.alternates[self.attempt]
        self.trace.record(
            self.sim.now, "conv.alternate", process.name, attempt=self.attempt
        )
        self.sim.schedule(
            alternate.duration,
            lambda: self._reach_test_line(process, alternate),
            label=f"{self.name}:alt",
        )

    def _reach_test_line(
        self, process: ConversationProcess, alternate: Alternate
    ) -> None:
        try:
            alternate.body(process.state, self.shared)
        except Exception:
            # A crashing alternate is just a failed computation; the
            # acceptance test below will fail and trigger rollback.
            process.state["__alternate_crashed__"] = True
        self._at_test_line.add(process.name)
        self.trace.record(
            self.sim.now, "conv.test_line", process.name, attempt=self.attempt
        )
        self._maybe_evaluate()

    def _maybe_evaluate(self) -> None:
        if self.accepted or self.failed:
            return
        if self._at_test_line != {p.name for p in self.processes}:
            return  # the test line is a barrier: wait for everyone
        results = {}
        for process in self.processes:
            passed = process.acceptance.passes(process.state)
            results[process.name] = passed
            self.test_log.append((self.attempt, process.name, passed))
        self.trace.record(
            self.sim.now, "conv.evaluate", self.name,
            attempt=self.attempt, results=str(sorted(results.items())),
        )
        if all(results.values()):
            self.accepted = True
            self.trace.record(self.sim.now, "conv.accept", self.name,
                              attempt=self.attempt)
            if self.on_finish:
                self.on_finish(True)
            return
        self._rollback_all()

    def _rollback_all(self) -> None:
        """Every process rolls back — failure anywhere is failure everywhere
        (the conversation is the unit of recovery)."""
        self._at_test_line.clear()
        self.attempt += 1
        out_of_alternates = any(
            self.attempt >= len(process.alternates) for process in self.processes
        )
        if self._shared_recovery is not None:
            self._shared_recovery.restore({}, self.shared)
        for process in self.processes:
            self._recovery[process.name].restore(process.state)
            self.trace.record(
                self.sim.now, "conv.rollback", process.name, attempt=self.attempt
            )
        if out_of_alternates:
            self.failed = True
            self.trace.record(self.sim.now, "conv.fail", self.name)
            if self.on_finish:
                self.on_finish(False)
            return
        for process in self.processes:
            self._run_alternate(process)
