"""Acceptance tests.

An acceptance test is the error-detection measure of backward recovery: a
predicate over the process state evaluated at the conversation's test line
(or at the end of a recovery block's alternate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

Predicate = Callable[[dict[str, Any]], bool]


@dataclass(frozen=True)
class AcceptanceTest:
    """A named predicate over a process-state dict."""

    predicate: Predicate
    name: str = "acceptance"

    def passes(self, state: dict[str, Any]) -> bool:
        """Evaluate; a predicate that *raises* counts as failed (an error
        inside the check is itself an error)."""
        try:
            return bool(self.predicate(state))
        except Exception:
            return False

    @staticmethod
    def always() -> "AcceptanceTest":
        return AcceptanceTest(lambda state: True, name="always")

    @staticmethod
    def requires(key: str, check: Callable[[Any], bool]) -> "AcceptanceTest":
        """Pass iff ``key`` exists and ``check(state[key])`` holds."""
        return AcceptanceTest(
            lambda state: key in state and check(state[key]),
            name=f"requires({key})",
        )
