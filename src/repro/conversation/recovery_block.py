"""Recovery blocks: single-process backward recovery [Randell 75].

``ensure <acceptance> by <primary> else by <alternate> ... else error`` —
the degenerate, one-process form of a conversation, provided both for
completeness (the paper cites recovery blocks as one of the two basic
fault-tolerant software techniques, Section 2.1) and as a local recovery
tool inside examples.
"""

from __future__ import annotations

from typing import Any

from repro.conversation.acceptance import AcceptanceTest
from repro.conversation.conversation import Alternate
from repro.conversation.recovery_point import RecoveryPoint
from repro.transactions.atomic_object import AtomicObject


class RecoveryBlockFailure(RuntimeError):
    """Every alternate failed the acceptance test."""


class RecoveryBlock:
    """A synchronous recovery block over a state dict."""

    def __init__(
        self,
        acceptance: AcceptanceTest,
        alternates: list[Alternate],
        shared: dict[str, AtomicObject] | None = None,
    ) -> None:
        if not alternates:
            raise ValueError("a recovery block needs at least one alternate")
        self.acceptance = acceptance
        self.alternates = alternates
        self.shared = dict(shared or {})
        #: Index of the alternate that passed (set by execute()).
        self.succeeded_with: int | None = None

    def execute(self, state: dict[str, Any]) -> dict[str, Any]:
        """Run alternates until one passes the acceptance test.

        Returns the (mutated) state.  Raises
        :class:`RecoveryBlockFailure` after restoring the entry state if
        all alternates fail.
        """
        recovery = RecoveryPoint.capture(0.0, state, self.shared)
        for index, alternate in enumerate(self.alternates):
            try:
                alternate.body(state, self.shared)
            except Exception:
                recovery.restore(state, self.shared)
                continue
            if self.acceptance.passes(state):
                self.succeeded_with = index
                return state
            recovery.restore(state, self.shared)
        raise RecoveryBlockFailure(
            f"all {len(self.alternates)} alternates failed "
            f"{self.acceptance.name}"
        )
