"""Conversations: joint backward error recovery (paper Section 2.2).

"Each process participating in such a conversation must save its state on
entering it ... If any process fails its acceptance test, then every
process taking part in the conversation rolls back to the saved state and
uses an alternate algorithm.  Processes can enter a conversation
asynchronously but must leave it at the same time once the acceptance test
in each process has been satisfied."

This package provides that scheme — recovery points, acceptance tests, the
synchronized test line, rollback with alternates — plus the single-process
recovery block [Randell 75] it generalises.  Together with the transaction
substrate it implements the *backward* half of Figure 2; CA actions use
the forward half (exception handling).
"""

from repro.conversation.acceptance import AcceptanceTest
from repro.conversation.conversation import (
    Alternate,
    Conversation,
    ConversationFailure,
    ConversationProcess,
)
from repro.conversation.recovery_block import RecoveryBlock, RecoveryBlockFailure
from repro.conversation.recovery_point import RecoveryPoint

__all__ = [
    "AcceptanceTest",
    "Alternate",
    "Conversation",
    "ConversationFailure",
    "ConversationProcess",
    "RecoveryBlock",
    "RecoveryBlockFailure",
    "RecoveryPoint",
]
