"""Recovery points: saved state for backward error recovery."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from repro.transactions.atomic_object import AtomicObject


@dataclass
class RecoveryPoint:
    """A snapshot of one process's state plus shared atomic objects.

    The process state is deep-copied so that in-place mutation of nested
    structures cannot leak through a rollback.
    """

    time: float
    process_state: dict[str, Any]
    object_snapshots: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        time: float,
        process_state: dict[str, Any],
        shared: dict[str, AtomicObject] | None = None,
    ) -> "RecoveryPoint":
        return cls(
            time=time,
            process_state=copy.deepcopy(process_state),
            object_snapshots={
                name: obj.snapshot() for name, obj in (shared or {}).items()
            },
        )

    def restore(
        self,
        process_state: dict[str, Any],
        shared: dict[str, AtomicObject] | None = None,
    ) -> None:
        """Roll the live state back to this point (in place)."""
        process_state.clear()
        process_state.update(copy.deepcopy(self.process_state))
        for name, snapshot in self.object_snapshots.items():
            if shared and name in shared:
                shared[name].restore_snapshot(snapshot)
