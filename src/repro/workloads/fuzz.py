"""Random nested-scenario generation for protocol fuzzing.

Builds random but *well-formed* CA-action worlds: a random tree of nested
actions (participant sets shrinking along each nesting edge), behaviours
that enter the actions consistently with the nesting, random raisers at
random times and levels, random abortion-handler signals and durations.

Used by the property suite to check the paper's guarantees — termination
and per-action handler agreement — over a workload space far larger than
the worked examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.abortion import AbortionHandler
from repro.core.action import CAActionDef
from repro.exceptions.declarations import UniversalException, declare_exception
from repro.exceptions.handlers import HandlerSet
from repro.exceptions.tree import ExceptionClass, ResolutionTree
from repro.net.latency import ConstantLatency, UniformLatency
from repro.workloads.behaviour import ActionBlock, Compute, Raise, Step
from repro.workloads.scenarios import ParticipantSpec, Scenario


@dataclass
class FuzzPlan:
    """A recipe for one random scenario (kept for shrinking/debugging)."""

    seed: int
    n_participants: int
    max_depth: int
    raise_probability: float
    signal_probability: float
    actions: list[CAActionDef] = field(default_factory=list)
    raisers: list[tuple[str, str]] = field(default_factory=list)  # (obj, action)

    def describe(self) -> str:
        return (
            f"FuzzPlan(seed={self.seed}, n={self.n_participants}, "
            f"actions={[a.name for a in self.actions]}, raisers={self.raisers})"
        )


@dataclass
class _ActionNode:
    definition: CAActionDef
    children: list["_ActionNode"] = field(default_factory=list)


def build_random_scenario(
    seed: int,
    n_participants: int = 4,
    max_depth: int = 3,
    raise_probability: float = 0.5,
    signal_probability: float = 0.3,
    random_latency: bool = True,
    failing_attempts: int = 0,
) -> tuple[Scenario, FuzzPlan]:
    """Generate a random nested scenario.

    Guarantees at least one raiser (otherwise there is no resolution to
    check), and at most one raise per object per action level (the
    Section 4.1 assumption).

    ``failing_attempts`` > 0 attaches a backward-recovery acceptance test
    to the ROOT action that fails that many times before passing —
    composing Figure 2(b) retries with whatever exceptions the attempt
    raised.
    """
    rng = random.Random(seed)
    plan = FuzzPlan(
        seed, n_participants, max_depth, raise_probability, signal_probability
    )
    names = [f"O{i:02d}" for i in range(n_participants)]

    exceptions: dict[str, list[ExceptionClass]] = {}

    def make_tree(action_name: str, leaves: int) -> ResolutionTree:
        excs = [
            declare_exception(f"Fz_{seed}_{action_name}_{i}")
            for i in range(leaves)
        ]
        # Randomly chain some exceptions under others for deeper trees.
        parents: dict[ExceptionClass, ExceptionClass] = {}
        for i, exc in enumerate(excs):
            pool = [UniversalException] + excs[:i]
            parents[exc] = rng.choice(pool)
        exceptions[action_name] = excs
        return ResolutionTree(UniversalException, parents)

    # -- random action tree ----------------------------------------------------
    counter = [0]
    attempts_seen = [0]

    def root_acceptance() -> bool:
        attempts_seen[0] += 1
        return attempts_seen[0] > failing_attempts

    def grow(parent: CAActionDef | None, members: list[str], depth: int) -> _ActionNode:
        counter[0] += 1
        name = f"A{counter[0]}"
        is_root = parent is None
        definition = CAActionDef(
            name,
            tuple(members),
            make_tree(name, leaves=max(1, len(members))),
            parent=parent.name if parent else None,
            acceptance=root_acceptance if is_root and failing_attempts else None,
            max_attempts=failing_attempts + 1 if is_root else 1,
        )
        plan.actions.append(definition)
        node = _ActionNode(definition)
        if depth < max_depth and len(members) >= 1 and rng.random() < 0.8:
            n_children = rng.randint(0, 2)
            available = list(members)
            for _ in range(n_children):
                if not available:
                    break
                size = rng.randint(1, len(available))
                rng.shuffle(available)
                child_members = sorted(available[:size])
                # Sibling actions get disjoint participant sets so a
                # participant's entered actions always form a chain.
                available = available[size:]
                node.children.append(grow(definition, child_members, depth + 1))
        return node

    root = grow(None, names, depth=1)

    # -- behaviours ------------------------------------------------------------
    raisers_chosen = False

    def behaviour_for(name: str, node: _ActionNode) -> list[Step]:
        nonlocal raisers_chosen
        steps: list[Step] = [Compute(rng.uniform(0.0, 6.0))]
        child = next(
            (c for c in node.children if name in c.definition.participants), None
        )
        if child is not None:
            # A declared participant must (try to) enter the nested action
            # — the model's contract; belatedness still arises from the
            # random compute delays before this step.
            steps.append(
                ActionBlock(child.definition.name, behaviour_for(name, child))
            )
        if rng.random() < raise_probability:
            exc = rng.choice(exceptions[node.definition.name])
            steps.append(Compute(rng.uniform(0.0, 8.0)))
            steps.append(Raise(exc))
            plan.raisers.append((name, node.definition.name))
            raisers_chosen = True
        else:
            steps.append(Compute(rng.uniform(5.0, 30.0)))
        return steps

    specs = []
    for name in names:
        body = behaviour_for(name, root)
        handler_sets = {}
        abortion_handlers = {}
        for definition in plan.actions:
            if name in definition.participants:
                handler_sets[definition.name] = HandlerSet.completing_all(
                    definition.tree, duration=rng.uniform(0.0, 2.0)
                )
                if definition.parent is not None:
                    if rng.random() < signal_probability:
                        parent_def = next(
                            a for a in plan.actions if a.name == definition.parent
                        )
                        signal = rng.choice(
                            sorted(
                                parent_def.tree.members, key=lambda c: c.__name__
                            )
                        )
                        abortion_handlers[definition.name] = (
                            AbortionHandler.signalling(
                                signal, duration=rng.uniform(0.0, 1.5)
                            )
                        )
                    else:
                        abortion_handlers[definition.name] = (
                            AbortionHandler.silent(duration=rng.uniform(0.0, 1.5))
                        )
        specs.append(
            ParticipantSpec(
                name,
                [ActionBlock(root.definition.name, body)],
                handler_sets,
                abortion_handlers,
                start_delay=rng.uniform(0.0, 2.0),
            )
        )

    if not raisers_chosen:
        # Force one raiser in the root action so every scenario exercises
        # at least one resolution.
        forced = specs[rng.randrange(len(specs))]
        root_excs = exceptions[root.definition.name]
        old_block = forced.behaviour[0]
        forced.behaviour = [
            ActionBlock(
                old_block.action, [*old_block.steps, Raise(rng.choice(root_excs))]
            )
        ]
        plan.raisers.append((forced.name, root.definition.name))

    latency = (
        UniformLatency(0.2, rng.uniform(1.0, 4.0))
        if random_latency
        else ConstantLatency(1.0)
    )
    scenario = Scenario(plan.actions, specs, latency=latency, seed=seed)
    return scenario, plan


def check_invariants(
    result, plan: FuzzPlan, crashed: tuple[str, ...] = ()
) -> list[str]:
    """The paper's guarantees, checked on a finished run.

    Returns a list of violations (empty = all good).  ``crashed`` names
    participants whose nodes were killed mid-run: they are exempt from
    the termination and completeness checks (a dead object owes nobody
    anything) but their *recorded* handler executions still count toward
    agreement — a crashed object must not have handled a conflicting
    exception before it died.
    """
    problems: list[str] = []
    dead = set(crashed)
    if not result.all_finished():
        unfinished = [
            name
            for name, runner in result.runners.items()
            if not runner.finished and name not in dead
        ]
        if unfinished:
            problems.append(f"non-termination: {unfinished} never finished")
    # Per-action, per-attempt handler agreement: within one incarnation of
    # one action, every participant that ran a resolved handler ran the
    # same exception's handler.  (Across backward-recovery attempts the
    # sets may legitimately differ: a participant can be aborted out of
    # one attempt before handling and handle in the next.)
    for definition in plan.actions:
        by_attempt: dict[str, dict[str, str]] = {}
        for name, participant in result.participants.items():
            for execution in participant.handler_log:
                if execution.action != definition.name:
                    continue
                bucket = by_attempt.setdefault(execution.incarnation, {})
                if name in bucket:
                    problems.append(
                        f"{name} handled twice in {definition.name} "
                        f"incarnation {execution.incarnation}"
                    )
                bucket[name] = execution.exception
        for attempt, bucket in by_attempt.items():
            if len(set(bucket.values())) > 1:
                problems.append(
                    f"handler disagreement in {definition.name} attempt "
                    f"{attempt}: {bucket}"
                )
        # In the final incarnation: if anyone handled, every participant
        # must have handled — unless the missing participant was aborted
        # out of the action by an outer resolution (which legitimately
        # "stops any activity ... including execution of any handlers",
        # Section 4.1, possibly mid-handler and after a luckier peer
        # already finished), or never managed to enter at all (belated).
        if by_attempt:
            last = by_attempt[max(by_attempt)]
            status = result.status(definition.name).value
            missing = set(definition.participants) - set(last)
            if missing and status != "aborted":
                excused = set()
                for entry in result.runtime.trace.entries:
                    if entry.details.get("action") != definition.name:
                        continue
                    if entry.category in (
                        "abort.done", "handler.cancelled",
                        "action.enter_refused",
                    ):
                        excused.add(entry.subject)
                entered = {
                    entry.subject
                    for entry in result.runtime.trace.by_category("action.enter")
                    if entry.details.get("action") == definition.name
                }
                unexcused = {
                    name
                    for name in missing
                    if name not in excused and name in entered
                    and name not in dead
                }
                if unexcused:
                    problems.append(
                        f"partial handling in {definition.name} ({status}): "
                        f"{sorted(unexcused)} handled nothing without being "
                        f"aborted; handlers ran in {sorted(last)}"
                    )
    return problems
