"""Behaviour scripts for participating objects.

A behaviour is a list of steps; :class:`ActionBlock` nests steps inside a
CA action, mirroring the static nesting of actions.  The
:class:`BehaviourRunner` walks the script in virtual time and integrates
with the termination model: when a resolution starts, the runner is
interrupted; when a handler completes an action, the runner resumes *after
that action's block* — the handler "takes over the duties of participating
objects in a CA action and completes the action" (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Optional, Sequence, Union

from repro.core.participant import (
    EXIT_COMPLETED,
    ActionUnavailableError,
    CAParticipant,
)
from repro.exceptions.tree import ExceptionClass
from repro.simkernel.scheduler import ScheduledHandle
from repro.transactions.atomic_object import AtomicObject
from repro.transactions.locks import LockMode


@dataclass(frozen=True)
class Compute:
    """Local computation for ``duration`` virtual time units."""

    duration: float


@dataclass(frozen=True)
class Raise:
    """Raise ``exception`` in the currently active action."""

    exception: ExceptionClass


@dataclass(frozen=True)
class AtomicWrite:
    """Write to an external atomic object under the action's transaction.

    With ``wait=True`` the step blocks (suspending the behaviour) until a
    competing action releases the lock — the paper's *competitive*
    concurrency.  If waiting would deadlock, ``on_deadlock`` (an exception
    declared in the action's tree) is raised within the action, turning a
    resource deadlock into coordinated exception resolution; with no
    ``on_deadlock`` the DeadlockError propagates as a hard error.
    """

    obj: AtomicObject
    key: Hashable
    value: Any
    wait: bool = False
    on_deadlock: Any = None


@dataclass(frozen=True)
class AtomicRead:
    """Read an external atomic object under the action's transaction.

    ``wait``/``on_deadlock`` as for :class:`AtomicWrite`.
    """

    obj: AtomicObject
    key: Hashable
    wait: bool = False
    on_deadlock: Any = None


@dataclass(frozen=True)
class ActionBlock:
    """Enter an action, run ``steps``, then leave synchronously.

    ``alternates`` are the recovery-block-style retry bodies for backward
    recovery (Figure 2(b)): when the action's acceptance test fails at the
    exit line, attempt k+1 runs ``alternates[k-1]`` (the last alternate
    repeats if attempts outnumber the alternates).
    """

    action: str
    steps: tuple["Step", ...]
    alternates: tuple[tuple["Step", ...], ...]

    def __init__(
        self,
        action: str,
        steps: Sequence["Step"] = (),
        alternates: Sequence[Sequence["Step"]] = (),
    ):
        object.__setattr__(self, "action", action)
        object.__setattr__(self, "steps", tuple(steps))
        object.__setattr__(
            self, "alternates", tuple(tuple(alt) for alt in alternates)
        )

    def steps_for_attempt(self, attempt: int) -> tuple["Step", ...]:
        """Primary steps for attempt 1, alternates after."""
        if attempt <= 1 or not self.alternates:
            return self.steps
        index = min(attempt - 2, len(self.alternates) - 1)
        return self.alternates[index]


Step = Union[Compute, Raise, AtomicWrite, AtomicRead, ActionBlock]


@dataclass
class _Frame:
    steps: tuple[Step, ...]
    index: int = 0
    action: Optional[str] = None
    block: Optional[ActionBlock] = None


class BehaviourError(RuntimeError):
    """The behaviour script is malformed for its participant."""


class BehaviourRunner:
    """Drives a participant through its behaviour script."""

    def __init__(self, participant: CAParticipant, steps: Sequence[Step]) -> None:
        self.participant = participant
        self._frames: list[_Frame] = [_Frame(tuple(steps))]
        self._pending: Optional[ScheduledHandle] = None
        self._lock_generation = 0
        self.finished = False
        #: Result of the outermost action if it failed: the signalled
        #: exception delivered to the environment.
        self.failure: Optional[ExceptionClass] = None
        #: Values observed by AtomicRead steps, in order.
        self.reads: list[Any] = []
        participant.on_interrupt = self._interrupt
        participant.on_action_exit = self._on_action_exit
        participant.on_action_retry = self._on_action_retry

    def start(self, delay: float = 0.0) -> None:
        self._schedule(delay)

    # -- plumbing ------------------------------------------------------------

    def _schedule(self, delay: float) -> None:
        self._pending = self.participant.runtime.sim.schedule(
            delay, self._step, label=f"behaviour:{self.participant.name}"
        )

    def _interrupt(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        # Invalidate any outstanding lock-grant callback: the resolution
        # taking over supersedes whatever the normal code was waiting for.
        self._lock_generation += 1

    def _step(self) -> None:
        self._pending = None
        if self.finished:
            return
        frame = self._frames[-1]
        if frame.index >= len(frame.steps):
            if frame.action is None:
                self.finished = True
                return
            # End of an action block: synchronous exit.  Continuation
            # happens in _on_action_exit once the barrier completes.
            self.participant.request_leave(frame.action)
            return
        step = frame.steps[frame.index]
        frame.index += 1
        self._run_step(step)

    def _run_step(self, step: Step) -> None:
        participant = self.participant
        if isinstance(step, Compute):
            self._schedule(step.duration)
        elif isinstance(step, ActionBlock):
            try:
                participant.enter_action(step.action)
            except ActionUnavailableError:
                # The nested action was aborted before this belated
                # participant arrived; skip its block — the outer
                # resolution will interrupt us momentarily.
                self._schedule(0.0)
                return
            self._frames.append(
                _Frame(step.steps, action=step.action, block=step)
            )
            # Entering may have kicked off a pending resolution which
            # interrupts us; only continue if still uninterrupted.
            if participant.engine.resolving_action() is None:
                self._schedule(0.0)
        elif isinstance(step, Raise):
            participant.raise_exception(step.exception)
            # The raise interrupts normal activity (termination model);
            # no further step is scheduled here.
        elif isinstance(step, AtomicWrite):
            txn = self._require_txn()
            if step.wait:
                self._acquire_then(
                    txn, step, LockMode.EXCLUSIVE,
                    lambda: txn.write_locked(step.obj, step.key, step.value),
                )
            else:
                txn.write(step.obj, step.key, step.value)
                self._schedule(0.0)
        elif isinstance(step, AtomicRead):
            txn = self._require_txn()
            if step.wait:
                self._acquire_then(
                    txn, step, LockMode.SHARED,
                    lambda: self.reads.append(
                        txn.read_locked(step.obj, step.key)
                    ),
                )
            else:
                self.reads.append(txn.read(step.obj, step.key))
                self._schedule(0.0)
        else:  # pragma: no cover - Step union is closed
            raise BehaviourError(f"unknown step {step!r}")

    def _acquire_then(self, txn, step, mode, operation) -> None:
        """Blocking lock acquisition for competitive concurrency.

        The behaviour suspends until the lock is granted; a would-be
        deadlock becomes an exception raised within the CA action (if the
        step names one), so competing actions recover through coordinated
        resolution instead of crashing.
        """
        from repro.transactions import DeadlockError, TxnState

        generation = self._lock_generation

        def on_granted() -> None:
            if (
                generation != self._lock_generation
                or self.finished
                or txn.state is not TxnState.ACTIVE
            ):
                return  # superseded by a resolution/abort while waiting
            operation()
            self._schedule(0.0)

        try:
            if txn.acquire_async(step.obj, mode, on_granted):
                on_granted()
        except DeadlockError:
            if step.on_deadlock is None:
                raise
            self.participant.runtime.trace.record(
                self.participant.sim_now, "lock.deadlock",
                self.participant.name, obj=step.obj.name,
                raising=step.on_deadlock.name(),
            )
            self.participant.raise_exception(step.on_deadlock)

    def _require_txn(self):
        participant = self.participant
        action = participant.active_action
        if action is None:
            raise BehaviourError(
                f"{participant.name}: atomic access outside any action"
            )
        txn = participant.action_manager.txn_for(action)
        if txn is None:
            raise BehaviourError(
                f"action {action} is not transactional; declare it with "
                "transactional=True to use atomic objects"
            )
        return txn

    def _on_action_retry(self, action: str, attempt: int) -> None:
        """Backward recovery: rerun the action block with the alternate
        body for this attempt (recovery-block semantics over CA actions).

        Frames of nested actions aborted during the failed attempt may
        still sit above the retried action's frame — unwind them first
        (their actions are gone; the new attempt starts from the retried
        block's top).
        """
        while self._frames and self._frames[-1].action != action:
            if self._frames[-1].action is None:
                raise BehaviourError(
                    f"{self.participant.name}: retry of {action} does not "
                    "match the behaviour stack"
                )
            self._frames.pop()
        if not self._frames:
            raise BehaviourError(
                f"{self.participant.name}: retry of unknown action {action}"
            )
        frame = self._frames[-1]
        if frame.block is not None:
            frame.steps = frame.block.steps_for_attempt(attempt)
        frame.index = 0
        self._schedule(0.0)

    def _on_action_exit(
        self, action: str, outcome: str, exc: Optional[ExceptionClass]
    ) -> None:
        # Unwind frames down to and including the exited action's frame.
        # Inner frames may still be present when the exit came from a
        # handler after nested-chain abortion.
        while self._frames and self._frames[-1].action != action:
            if self._frames[-1].action is None:
                # The exited action's block was never on our stack (e.g.
                # exit of an action we only entered — impossible by
                # construction, so this is a script bug).
                raise BehaviourError(
                    f"{self.participant.name}: exit of {action} does not "
                    "match the behaviour stack"
                )
            self._frames.pop()
        if self._frames:
            self._frames.pop()
        if outcome == EXIT_COMPLETED:
            if not self._frames:
                self.finished = True
                return
            self._schedule(0.0)
            return
        # Failure: if the action had a parent, the participant has raised
        # the signalled exception there and resolution is in progress — we
        # stay interrupted.  A failed outermost action finishes the run.
        if self.participant.registry.get(action).parent is None:
            self.failure = exc
            self.finished = True
