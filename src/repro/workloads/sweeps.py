"""Parameter sweeps over the paper's workload space.

A thin, typed API for what the benchmark harness does by hand: run a
family of scenarios across a parameter grid, collect the measured message
counts next to the Section 4.4 model values, and expose the rows ready
for tabulation or power-law fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.analysis.fitting import PowerLawFit, fit_power_law
from repro.analysis.formulas import general_messages
from repro.analysis.metrics import resolution_timeline
from repro.net.latency import LatencyModel
from repro.simkernel.trace import TraceLevel
from repro.workloads.generator import general_case


@dataclass(frozen=True)
class SweepPoint:
    """One measured (N, P, Q) workload."""

    n: int
    p: int
    q: int
    measured: int
    model: int
    commit_latency: Optional[float]

    @property
    def matches_model(self) -> bool:
        return self.measured == self.model


@dataclass
class SweepResult:
    """All points of one sweep with summary helpers."""

    points: list[SweepPoint]

    def mismatches(self) -> list[SweepPoint]:
        return [p for p in self.points if not p.matches_model]

    def fit_in_n(self) -> PowerLawFit:
        """Power-law fit of measured messages against N (requires at least
        two distinct N with nonzero counts)."""
        return fit_power_law(
            [(p.n, p.measured) for p in self.points if p.measured > 0]
        )

    def rows(self) -> list[tuple]:
        return [
            (p.n, p.p, p.q, p.model, p.measured,
             "OK" if p.matches_model else "MISMATCH")
            for p in self.points
        ]


def measure_point(
    n: int,
    p: int,
    q: int,
    latency: LatencyModel | None = None,
    seed: int = 0,
    trace_level: TraceLevel = TraceLevel.FULL,
    **scenario_kwargs,
) -> SweepPoint:
    """Run one (N, P, Q) workload and produce its :class:`SweepPoint`.

    Shared by the serial sweep and the process-pool workers of
    :mod:`repro.workloads.parallel`, so both paths are the same code and
    produce bit-identical points.  Under ``COUNTS``/``OFF`` tracing the
    commit-latency timeline cannot be extracted (it needs full entries), so
    ``commit_latency`` is ``None`` — measured counts are unaffected.
    """
    result = general_case(
        n, p, q, latency=latency, seed=seed, trace_level=trace_level,
        **scenario_kwargs,
    ).run()
    trace = result.runtime.trace
    commit_latency = None
    if trace.wants_entries:
        commit_latency = resolution_timeline(trace, "A1").detection_to_commit
    return SweepPoint(
        n=n, p=p, q=q,
        measured=result.resolution_message_total(),
        model=general_messages(n, p, q),
        commit_latency=commit_latency,
    )


def measure_point_metrics(
    n: int,
    p: int,
    q: int,
    latency: LatencyModel | None = None,
    seed: int = 0,
    trace_level: TraceLevel = TraceLevel.FULL,
    **scenario_kwargs,
) -> tuple[SweepPoint, dict]:
    """Like :func:`measure_point`, plus the run's metrics snapshot.

    Kept separate from :func:`measure_point` so the plain sweep path (and
    its bit-identical serial/parallel guarantee over :class:`SweepPoint`)
    is untouched; the snapshot is a plain picklable dict suitable for
    cross-process merging with :func:`repro.obs.metrics.merge_snapshots`.
    """
    result = general_case(
        n, p, q, latency=latency, seed=seed, trace_level=trace_level,
        **scenario_kwargs,
    ).run()
    trace = result.runtime.trace
    commit_latency = None
    if trace.wants_entries:
        commit_latency = resolution_timeline(trace, "A1").detection_to_commit
    point = SweepPoint(
        n=n, p=p, q=q,
        measured=result.resolution_message_total(),
        model=general_messages(n, p, q),
        commit_latency=commit_latency,
    )
    return point, result.metrics_snapshot()


def sweep_general(
    grid: Iterable[tuple[int, int, int]],
    latency: LatencyModel | None = None,
    seed: int = 0,
    trace_level: TraceLevel = TraceLevel.FULL,
    **scenario_kwargs,
) -> SweepResult:
    """Measure the (N, P, Q) workloads in ``grid``."""
    points = [
        measure_point(
            n, p, q, latency=latency, seed=seed, trace_level=trace_level,
            **scenario_kwargs,
        )
        for n, p, q in grid
    ]
    return SweepResult(points)


def sweep_general_metrics(
    grid: Iterable[tuple[int, int, int]],
    latency: LatencyModel | None = None,
    seed: int = 0,
    trace_level: TraceLevel = TraceLevel.FULL,
    **scenario_kwargs,
) -> tuple[SweepResult, dict]:
    """Serial sweep that also folds every point's metrics into one snapshot.

    Counters and histograms add across points; gauges keep the last point's
    value (grid order), matching the parallel runner's merge order.
    """
    from repro.obs.metrics import merge_snapshots

    points: list[SweepPoint] = []
    snapshots: list[dict] = []
    for n, p, q in grid:
        point, snapshot = measure_point_metrics(
            n, p, q, latency=latency, seed=seed, trace_level=trace_level,
            **scenario_kwargs,
        )
        points.append(point)
        snapshots.append(snapshot)
    return SweepResult(points), merge_snapshots(snapshots)


def full_grid(n_values: Sequence[int]) -> list[tuple[int, int, int]]:
    """Every legal (N, P, Q) with P ≥ 1 for the given N values."""
    grid = []
    for n in n_values:
        for p in range(1, n + 1):
            for q in range(0, n - p + 1):
                grid.append((n, p, q))
    return grid


def scaling_grid(
    n_values: Sequence[int],
    p_of_n=lambda n: max(1, n // 2),
    q_of_n=lambda n: n // 4,
) -> list[tuple[int, int, int]]:
    """A grid where P and Q scale with N (the Θ(N²) regime)."""
    return [(n, p_of_n(n), q_of_n(n)) for n in n_values]
