"""Workloads: behaviour scripts, scenario harness and paper-case generators.

Participant application code is *scripted* (see DESIGN.md): a behaviour is
a tree of steps mirroring the action nesting.  :mod:`repro.workloads.scenarios`
assembles behaviours, handler sets and action declarations into a runnable
simulated system; :mod:`repro.workloads.generator` builds the exact
workloads of the paper's Section 4.3 examples and Section 4.4 analysis
cases; :mod:`repro.workloads.sweeps` runs parameter sweeps for the
benchmark harness.
"""

from repro.workloads.behaviour import (
    ActionBlock,
    AtomicRead,
    AtomicWrite,
    BehaviourRunner,
    Compute,
    Raise,
    Step,
)
from repro.workloads.parallel import (
    ParallelSweepRunner,
    SweepWorkerError,
    parallel_sweep_general,
)
from repro.workloads.scenarios import ParticipantSpec, Scenario, ScenarioResult

__all__ = [
    "ActionBlock",
    "AtomicRead",
    "AtomicWrite",
    "BehaviourRunner",
    "Compute",
    "ParallelSweepRunner",
    "ParticipantSpec",
    "Raise",
    "Scenario",
    "ScenarioResult",
    "Step",
    "SweepWorkerError",
    "parallel_sweep_general",
]
