"""Generators for the paper's analysis cases and worked examples.

Each function builds a :class:`~repro.workloads.scenarios.Scenario` whose
measured resolution-message counts correspond to a specific claim of the
paper:

* :func:`general_case` — Section 4.4's ``(N-1)(2P + 3Q + 1)`` formula,
  with :func:`single_exception_case`, :func:`all_nested_case` and
  :func:`all_raise_case` as the three named special cases;
* :func:`example1_scenario` — Section 4.3 Example 1 (three objects, two
  concurrent exceptions);
* :func:`example2_scenario` — Section 4.3 Example 2 / Figure 4 (nested
  actions, a belated participant, an abortion-handler signal);
* :func:`figure3_scenario` — the Section 3.3 / Figure 3 situation used to
  check abortion ordering and belated-participant problems;
* :func:`no_exception_case` — normal completion, for the zero-overhead
  claim.
"""

from __future__ import annotations

from repro.core.abortion import AbortionHandler
from repro.core.action import CAActionDef, NestedPolicy
from repro.exceptions.declarations import (
    UniversalException,
    declare_exception,
)
from repro.exceptions.handlers import HandlerSet
from repro.exceptions.tree import ResolutionTree
from repro.net.latency import LatencyModel
from repro.objects.naming import canonical_name
from repro.simkernel.trace import TraceLevel
from repro.workloads.behaviour import ActionBlock, Compute, Raise
from repro.workloads.scenarios import ParticipantSpec, Scenario

#: Default duration of "real work" steps; long enough that exceptions
#: always interrupt mid-work, short enough to keep runs fast.
WORK = 50.0
#: Default instant at which raisers raise (concurrently).
RAISE_AT = 10.0


def _flat_tree(leaves: int, prefix: str) -> tuple[ResolutionTree, list]:
    """Root plus ``leaves`` sibling exceptions; returns (tree, leaf list)."""
    classes = [
        declare_exception(f"{prefix}_{i}") for i in range(leaves)
    ]
    tree = ResolutionTree(
        UniversalException, {cls: UniversalException for cls in classes}
    )
    return tree, classes


def general_case(
    n: int,
    p: int,
    q: int,
    latency: LatencyModel | None = None,
    seed: int = 0,
    raise_at: float = RAISE_AT,
    policy: NestedPolicy = NestedPolicy.ABORT_NESTED,
    abort_duration: float = 0.0,
    nested_work: float = WORK,
    resolver_group_size: int = 1,
    trace_level: TraceLevel = TraceLevel.FULL,
    failure_plan=None,
    reliable: bool = False,
    ack_timeout: float = 5.0,
    max_retries: int = 60,
    crashes=(),
) -> Scenario:
    """The Section 4.4 workload: N participants of one action, of which P
    raise concurrently and Q sit inside nested actions.

    Expected resolution messages: ``(N - 1) * (2P + 3Q + 1)`` when P >= 1.

    Raisers and nested objects are disjoint (a raiser raises in the
    top-level action, which requires it not to be inside a nested one);
    hence ``p + q <= n`` and ``p >= 1``.

    ``failure_plan``/``reliable``/``crashes`` forward to
    :class:`~repro.workloads.scenarios.Scenario` so fault campaigns can run
    this exact workload over a faulty channel.
    """
    if n < 1:
        raise ValueError(f"need at least one participant, got n={n}")
    if not 0 <= p <= n:
        raise ValueError(f"bad raiser count p={p} for n={n}")
    if not 0 <= q <= n - p:
        raise ValueError(f"bad nested count q={q} for n={n}, p={p}")

    names = [canonical_name(i) for i in range(n)]
    tree, leaves = _flat_tree(max(p, 1), "GeneralExc")
    top = CAActionDef(
        "A1",
        tuple(names),
        tree,
        policy=policy,
        resolver_group_size=resolver_group_size,
    )
    actions = [top]
    specs = []
    # All participants share the same (immutable) complete handler set for
    # A1, every nested action shares one root-only tree/handler set, and
    # every nested participant the same silent abortion handler: the former
    # per-participant construction was O(N·P) Handler allocations and
    # dominated scenario build time at large N.
    top_handlers = HandlerSet.completing_all(tree)
    nested_tree = ResolutionTree(UniversalException)
    nested_handlers = HandlerSet.completing_all(nested_tree)
    silent_abort = AbortionHandler.silent(abort_duration)
    for i, name in enumerate(names):
        handler_sets = {"A1": top_handlers}
        abortion_handlers = {}
        if i < p:
            behaviour = [ActionBlock("A1", [Compute(raise_at), Raise(leaves[i]),])]
        elif i < p + q:
            nested_name = f"A1.N{i}"
            actions.append(
                CAActionDef(nested_name, (name,), nested_tree, parent="A1")
            )
            handler_sets[nested_name] = nested_handlers
            abortion_handlers[nested_name] = silent_abort
            behaviour = [
                ActionBlock(
                    "A1", [ActionBlock(nested_name, [Compute(nested_work)])]
                )
            ]
        else:
            behaviour = [ActionBlock("A1", [Compute(WORK)])]
        specs.append(
            ParticipantSpec(
                name=name,
                behaviour=behaviour,
                handler_sets=handler_sets,
                abortion_handlers=abortion_handlers,
            )
        )
    return Scenario(
        actions, specs, latency=latency, seed=seed, trace_level=trace_level,
        failure_plan=failure_plan, reliable=reliable, ack_timeout=ack_timeout,
        max_retries=max_retries, crashes=crashes,
    )


def single_exception_case(n: int, **kwargs) -> Scenario:
    """Section 4.4 case 1: one exception, no nested actions → 3(N-1)."""
    return general_case(n, p=1, q=0, **kwargs)


def all_nested_case(n: int, **kwargs) -> Scenario:
    """Section 4.4 case 2: one raiser, everyone else nested → 3N(N-1)."""
    return general_case(n, p=1, q=n - 1, **kwargs)


def all_raise_case(n: int, **kwargs) -> Scenario:
    """Section 4.4 case 3: everyone raises at once → (N-1)(2N+1)."""
    return general_case(n, p=n, q=0, **kwargs)


def no_exception_case(n: int, q: int = 0, **kwargs) -> Scenario:
    """Normal completion: the algorithm must add zero resolution traffic."""
    return general_case(n, p=0, q=q, **kwargs)


# -- Section 4.3 Example 1 ------------------------------------------------------

class E1(UniversalException):
    """Exception raised by O1 in the worked examples."""


class E2(UniversalException):
    """Exception raised by O2 in the worked examples."""


class E3(UniversalException):
    """Exception signalled by O2's abortion handler in Example 2."""


def example1_scenario(
    latency: LatencyModel | None = None, seed: int = 0
) -> Scenario:
    """Three objects in action A1; E1 and E2 raised concurrently in O1, O2.

    The paper's trace: both raisers broadcast, everyone ACKs, O2 (the
    bigger name among raisers) resolves and commits; O3 only ACKs and
    handles.
    """
    tree = ResolutionTree(
        UniversalException, {E1: UniversalException, E2: UniversalException}
    )
    action = CAActionDef("A1", ("O1", "O2", "O3"), tree)
    handler_sets = lambda: {"A1": HandlerSet.completing_all(tree)}  # noqa: E731
    specs = [
        ParticipantSpec(
            "O1",
            [ActionBlock("A1", [Compute(RAISE_AT), Raise(E1)])],
            handler_sets(),
        ),
        ParticipantSpec(
            "O2",
            [ActionBlock("A1", [Compute(RAISE_AT), Raise(E2)])],
            handler_sets(),
        ),
        ParticipantSpec(
            "O3", [ActionBlock("A1", [Compute(WORK)])], handler_sets()
        ),
    ]
    return Scenario([action], specs, latency=latency, seed=seed)


# -- Section 4.3 Example 2 / Figure 4 -------------------------------------------

def example2_scenario(
    latency: LatencyModel | None = None,
    seed: int = 0,
    o3_entry_delay: float = 40.0,
    abort_duration: float = 1.0,
) -> Scenario:
    """Four objects in nested actions A1 ⊃ A2 ⊃ A3 (Figure 4).

    * O2 raises E2 within A3 at t=5; its Exception to the belated O3 can
      never be processed (O3 has not entered A3).
    * O1 raises E1 within A1 at t=10; O2/O3/O4 send HaveNested, abort
      their chains; O2's A2 abortion handler signals E3.
    * O2 resolves {E1, E3} (name(O2) > name(O1)) and commits.
    """
    tree_a1 = ResolutionTree(
        UniversalException,
        {E1: UniversalException, E3: UniversalException},
    )
    tree_a2 = ResolutionTree(UniversalException)
    tree_a3 = ResolutionTree(
        UniversalException, {E2: UniversalException}
    )
    actions = [
        CAActionDef("A1", ("O1", "O2", "O3", "O4"), tree_a1),
        CAActionDef("A2", ("O2", "O3", "O4"), tree_a2, parent="A1"),
        CAActionDef("A3", ("O2", "O3"), tree_a3, parent="A2"),
    ]

    def sets_for(*action_names: str) -> dict[str, HandlerSet]:
        trees = {"A1": tree_a1, "A2": tree_a2, "A3": tree_a3}
        return {
            name: HandlerSet.completing_all(trees[name]) for name in action_names
        }

    specs = [
        ParticipantSpec(
            "O1",
            [ActionBlock("A1", [Compute(RAISE_AT), Raise(E1)])],
            sets_for("A1"),
        ),
        ParticipantSpec(
            "O2",
            [
                ActionBlock(
                    "A1",
                    [
                        ActionBlock(
                            "A2",
                            [
                                ActionBlock(
                                    "A3", [Compute(5.0), Raise(E2)]
                                )
                            ],
                        )
                    ],
                )
            ],
            sets_for("A1", "A2", "A3"),
            abortion_handlers={
                "A3": AbortionHandler.silent(abort_duration),
                "A2": AbortionHandler.signalling(E3, abort_duration),
            },
        ),
        ParticipantSpec(
            "O3",
            [
                ActionBlock(
                    "A1",
                    [
                        ActionBlock(
                            "A2",
                            [
                                Compute(o3_entry_delay),  # belated for A3
                                ActionBlock("A3", [Compute(WORK)]),
                            ],
                        )
                    ],
                )
            ],
            sets_for("A1", "A2", "A3"),
            abortion_handlers={"A2": AbortionHandler.silent(abort_duration)},
        ),
        ParticipantSpec(
            "O4",
            [ActionBlock("A1", [ActionBlock("A2", [Compute(WORK)])])],
            sets_for("A1", "A2"),
            abortion_handlers={"A2": AbortionHandler.silent(abort_duration)},
        ),
    ]
    return Scenario(actions, specs, latency=latency, seed=seed)


# -- Section 3.3 / Figure 3 -----------------------------------------------------

def figure3_scenario(
    latency: LatencyModel | None = None,
    seed: int = 0,
    abort_duration: float = 2.0,
    o1_raise_at: float = RAISE_AT,
) -> Scenario:
    """Four objects O0..O3 in A1 ⊃ A2 ⊃ A3 (Figure 3).

    O1 is declared in A2 and A3 but never manages to enter them (belated);
    it raises within A1.  O2 and O3 are deep inside A3 and must abort A3
    before A2 without waiting for O1.
    """
    exc = declare_exception("Fig3Exc")
    tree_a1 = ResolutionTree(UniversalException, {exc: UniversalException})
    tree_inner = ResolutionTree(UniversalException)
    actions = [
        CAActionDef("A1", ("O0", "O1", "O2", "O3"), tree_a1),
        CAActionDef("A2", ("O1", "O2", "O3"), tree_inner, parent="A1"),
        CAActionDef("A3", ("O1", "O2", "O3"), tree_inner, parent="A2"),
    ]

    def sets_for(*names: str) -> dict[str, HandlerSet]:
        trees = {"A1": tree_a1, "A2": tree_inner, "A3": tree_inner}
        return {name: HandlerSet.completing_all(trees[name]) for name in names}

    deep = [
        ActionBlock(
            "A1",
            [ActionBlock("A2", [ActionBlock("A3", [Compute(WORK)])])],
        )
    ]
    specs = [
        ParticipantSpec(
            "O0", [ActionBlock("A1", [Compute(WORK)])], sets_for("A1")
        ),
        ParticipantSpec(
            "O1",
            # Belated: still computing inside A1 when it detects the error,
            # so it never enters A2/A3.
            [ActionBlock("A1", [Compute(o1_raise_at), Raise(exc)])],
            sets_for("A1", "A2", "A3"),
        ),
        ParticipantSpec(
            "O2",
            deep,
            sets_for("A1", "A2", "A3"),
            abortion_handlers={
                "A2": AbortionHandler.silent(abort_duration),
                "A3": AbortionHandler.silent(abort_duration),
            },
        ),
        ParticipantSpec(
            "O3",
            deep,
            sets_for("A1", "A2", "A3"),
            abortion_handlers={
                "A2": AbortionHandler.silent(abort_duration),
                "A3": AbortionHandler.silent(abort_duration),
            },
        ),
    ]
    return Scenario(actions, specs, latency=latency, seed=seed)


def expected_general_messages(n: int, p: int, q: int) -> int:
    """The paper's Section 4.4 formula ``(N-1)(2P + 3Q + 1)``."""
    if p == 0:
        return 0
    return (n - 1) * (2 * p + 3 * q + 1)
