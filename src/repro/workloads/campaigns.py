"""Fault-matrix campaign engine with protocol invariant oracles.

The resolution protocol's correctness argument (Sections 4.1–4.2) rests on
invariants — every participant of an action agrees on the resolved
exception, every handler runs at most once, resolution terminates — that
the worked examples only witness on the happy path.  This module sweeps a
*fault matrix* instead: every protocol variant in the repo crossed with
every fault the injector models, each run checked against explicit
oracles.

Matrix axes
-----------

* **Scenario family** — ``paper``: the Section 4.4 ``(N, P, Q)`` workload
  shape (fuzzed shapes, exact count formulas known); ``fuzz``: random
  nested worlds from :mod:`repro.workloads.fuzz` (no count formula, full
  nesting generality, base variant only).
* **Variant** — ``base`` (Section 4.2 decentralised algorithm), ``ct``
  (crash-tolerant extension), ``mc`` (Section 4.5 multicast variant),
  ``cd`` (Section 4.5 centralised variant).  ``mc``/``cd`` run the flat
  projection of the workload (``cd`` ignores Q: it is a flat-action
  variant by construction).
* **Fault** — ``none``, ``drop`` (lossy channel + ARQ transport),
  ``corrupt`` (checksum-detected corruption + ARQ), ``partition`` (a
  6-time-unit split covering the resolution window + ARQ),
  ``crash_participant`` and ``crash_resolver`` (node death mid-protocol;
  for ``ct`` cells with Q > 0 the participant crash lands *during nested
  abortion* — the crash-tolerant variant's newest increment).

Oracles (per cell)
------------------

1. **Termination** — the run finishes (all behaviours complete / all
   survivors handle).  A stall is only acceptable where this repo
   *documents* the protocol stalls (crashes under variants without a
   failure detector); anything else is classified ``STALLED-BUG``.
2. **Agreement** — every participant that started a resolved handler for
   an action started it for the *same* exception (crashed members'
   pre-death handlers included).
3. **Exactly-once** — no participant activates a resolved handler twice
   for one action incarnation.
4. **Counts** — fault-free cells must reproduce the paper's exact message
   counts: ``(N-1)(2P+3Q+1)`` for ``base``, ``(N-1)(2P+2Q+1)`` for
   ``ct``, ``N+Q+1`` multicast operations for ``mc``, ``3N-2+P`` for
   ``cd``.

Classifications: ``OK``, ``STALLED-EXPECTED``, ``STALLED-BUG``,
``INVARIANT-VIOLATION``, ``CRASHED-HARNESS`` (the harness itself raised —
campaign cells never take the whole sweep down).  Each failing cell
carries a one-line repro command.

The oracles themselves are tested by *sabotage*: :func:`oracle_selftest`
re-runs a healthy cell with seeded violations (flipped handler, doubled
activation, off-by-one count, forced stall) and checks each one is caught.

Campaign fan-out rides :func:`repro.workloads.parallel.parallel_map`
(fork pool, deterministic reassembly); cells are independent seeded
simulations, so a campaign is reproducible from its seed alone.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.net.failures import FailurePlan, split_partition
from repro.net.latency import ConstantLatency
from repro.objects.naming import canonical_name
from repro.workloads.parallel import ProgressCallback, parallel_map

# Classifications --------------------------------------------------------------

OK = "OK"
STALLED_EXPECTED = "STALLED-EXPECTED"
STALLED_BUG = "STALLED-BUG"
INVARIANT_VIOLATION = "INVARIANT-VIOLATION"
CRASHED_HARNESS = "CRASHED-HARNESS"

CLASSIFICATIONS = (
    OK, STALLED_EXPECTED, STALLED_BUG, INVARIANT_VIOLATION, CRASHED_HARNESS
)

#: Classifications that make a campaign fail.
BAD = (STALLED_BUG, INVARIANT_VIOLATION, CRASHED_HARNESS)

# Matrix axes ------------------------------------------------------------------

VARIANTS = ("base", "ct", "mc", "cd")
FAULTS = (
    "none", "drop", "corrupt", "partition",
    "crash_participant", "crash_resolver",
)
#: Crash-*restart* faults (ct only): the victim dies mid-protocol and its
#: node later comes back, replays its WAL and runs the rejoin protocol.
#: ``early`` restarts before resolution completes (the returnee must
#: rejoin with the agreed handler), ``late`` restarts after (it must
#: confirm its abort), ``resolver`` crashes and early-restarts the
#: would-be resolver itself.  These rows live in :func:`recovery_matrix`
#: (E28), not the default matrix, so ``BENCH_faults.json`` stays stable.
RECOVERY_FAULTS = (
    "crash_restart_early", "crash_restart_late", "crash_restart_resolver",
)
FUZZ_FAULTS = ("none", "drop", "corrupt", "partition", "crash")

SABOTAGES = ("disagree", "double", "count", "stall", "rejoin")

# Fault parameters (shared by every cell so campaigns stay comparable).
DROP_P = 0.2
CORRUPT_P = 0.15
#: Paper-family partition window: opens just after the t=10 raise, long
#: enough to block the ACK round, short enough that ARQ retransmission
#: (and the crash-tolerant detector's timeout) ride it out.
PARTITION_WINDOW = (11.0, 17.0)
FUZZ_PARTITION_WINDOW = (6.0, 12.0)
ACK_TIMEOUT = 2.0
MAX_RETRIES = 25
RAISE_AT = 10.0
#: Crash just after the raise instant: broadcasts are out, ACKs are not.
CRASH_AT = 10.5
#: Crash-tolerant nested cells crash *mid-abortion* instead: informed at
#: ~11 (unit latency), aborting for ABORT_DURATION, dead at 13.
CT_NESTED_CRASH_AT = 13.0
ABORT_DURATION = 5.0
HB_INTERVAL = 2.0
#: Above the partition window plus ARQ slack: no false suspicion in
#: partition cells (suspicion under partitions is a different experiment).
HB_TIMEOUT = 12.0
FUZZ_CRASH_AT = 15.0
#: Early restart: before anyone suspects the victim (suspicion needs
#: HB_TIMEOUT of silence past the last pre-crash heartbeat, ~t=24), so
#: resolution is still in flight and the returnee can fully re-participate.
RESTART_EARLY_AT = 16.0
#: Late restart: well after the survivors resolved over the shrunk view
#: (commit lands ~t=25-27), so the returnee's only correct move is to
#: confirm its abort.
RESTART_LATE_AT = 60.0
RUN_UNTIL = 400.0


@dataclass(frozen=True)
class CampaignCell:
    """One point of the fault matrix (picklable, fully describes a run)."""

    family: str  # "paper" | "fuzz"
    variant: str  # "base" | "ct" | "mc" | "cd" ("fuzz" family: always "base")
    fault: str
    n: int
    p: int = 0
    q: int = 0
    seed: int = 0
    sabotage: Optional[str] = None

    @property
    def cell_id(self) -> str:
        base = (
            f"{self.family}:{self.variant}:{self.fault}"
            f":n{self.n}p{self.p}q{self.q}:s{self.seed}"
        )
        return f"{base}:sab-{self.sabotage}" if self.sabotage else base

    def repro_command(self) -> str:
        return (
            "PYTHONPATH=src python benchmarks/bench_fault_campaigns.py "
            f"--cell '{self.cell_id}'"
        )


def parse_cell_id(cell_id: str) -> CampaignCell:
    """Inverse of :attr:`CampaignCell.cell_id` (for ``--cell`` repros)."""
    parts = cell_id.split(":")
    if len(parts) not in (5, 6):
        raise ValueError(f"malformed cell id: {cell_id!r}")
    family, variant, fault, shape, seed_part = parts[:5]
    sabotage = None
    if len(parts) == 6:
        if not parts[5].startswith("sab-"):
            raise ValueError(f"malformed sabotage suffix in {cell_id!r}")
        sabotage = parts[5][len("sab-"):]
    try:
        n_str, rest = shape[1:].split("p", 1)
        p_str, q_str = rest.split("q", 1)
        n, p, q = int(n_str), int(p_str), int(q_str)
        seed = int(seed_part.lstrip("s"))
    except ValueError:
        raise ValueError(f"malformed cell id: {cell_id!r}") from None
    return CampaignCell(family, variant, fault, n, p, q, seed, sabotage)


@dataclass(frozen=True)
class CellOutcome:
    """What one cell's run produced, post-oracle."""

    cell: CampaignCell
    classification: str
    violations: tuple[str, ...] = ()
    detail: str = ""
    measured: Optional[int] = None
    expected: Optional[int] = None
    sim_duration: float = 0.0

    @property
    def bad(self) -> bool:
        return self.classification in BAD

    def repro_line(self) -> str:
        return f"[{self.classification}] {self.cell.cell_id} -> {self.cell.repro_command()}"


@dataclass
class _Observation:
    """Raw facts one run exposes to the oracles (sabotage perturbs these)."""

    finished: bool
    handled: dict[str, str] = field(default_factory=dict)
    double_handled: list[str] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    measured: Optional[int] = None
    expected: Optional[int] = None
    crashed: tuple[str, ...] = ()
    survivors: tuple[str, ...] = ()
    sim_duration: float = 0.0
    #: The run's Runtime — in-process diagnostics only (never pickled:
    #: :func:`run_cell` reduces observations to plain :class:`CellOutcome`
    #: before results cross the pool boundary).
    runtime: Optional[object] = None


# -- victim selection -----------------------------------------------------------


def _resolver_victim(cell: CampaignCell) -> str:
    """The paper-family resolver: the biggest raiser (``cd``: the coordinator)."""
    if cell.variant == "cd":
        return "coord"
    return canonical_name(cell.p - 1)


def _participant_victim(cell: CampaignCell) -> str:
    """A non-resolver victim.

    For ``ct`` cells with nested members, the victim is the first nested
    member so the crash lands mid-abortion; otherwise the last (or, when
    everyone raises, the first) participant.
    """
    if cell.variant == "ct" and cell.q > 0:
        return canonical_name(cell.p)
    if cell.p == cell.n:
        return canonical_name(0)
    return canonical_name(cell.n - 1)


def stall_expected(cell: CampaignCell) -> bool:
    """Is a stall the *documented* outcome for this cell?

    The base, multicast and centralised variants have no failure detector:
    a mid-protocol crash leaves someone waiting forever (for ``cd`` the
    coordinator is additionally a single point of failure).  The
    crash-tolerant variant must never stall — that is its contract.
    """
    if cell.family == "fuzz":
        return cell.fault == "crash"
    if cell.fault not in ("crash_participant", "crash_resolver"):
        return False
    return cell.variant in ("base", "mc", "cd")


# -- cell execution --------------------------------------------------------------


def _fault_knobs(cell: CampaignCell, members: Sequence[str]) -> dict:
    """Translate the fault axis into run-function keyword arguments."""
    window = (
        FUZZ_PARTITION_WINDOW if cell.family == "fuzz" else PARTITION_WINDOW
    )
    if cell.fault == "none":
        return {}
    if cell.fault == "drop":
        return {
            "failure_plan": FailurePlan(drop_probability=DROP_P),
            "reliable": True,
        }
    if cell.fault == "corrupt":
        return {
            "failure_plan": FailurePlan(corrupt_probability=CORRUPT_P),
            "reliable": True,
        }
    if cell.fault == "partition":
        return {
            "failure_plan": FailurePlan(
                partitions=[split_partition(list(members), *window)]
            ),
            "reliable": True,
        }
    if cell.fault in ("crash_participant", "crash_resolver", "crash"):
        return {}  # crashes are scheduled per-variant, not injector knobs
    if cell.fault in RECOVERY_FAULTS:
        return {}  # crash + restart are scheduled per-variant too
    raise ValueError(f"unknown fault: {cell.fault}")


def _crash_spec(cell: CampaignCell) -> tuple[tuple[str, ...], float]:
    """(victims, crash time) for crash cells; ((), 0.0) otherwise."""
    if cell.fault in ("crash_resolver", "crash_restart_resolver"):
        return (_resolver_victim(cell),), CRASH_AT
    if cell.fault in (
        "crash_participant", "crash_restart_early", "crash_restart_late"
    ):
        victim = _participant_victim(cell)
        at = (
            CT_NESTED_CRASH_AT
            if cell.variant == "ct" and cell.q > 0
            else CRASH_AT
        )
        return (victim,), at
    return (), 0.0


def restart_spec(cell: CampaignCell) -> Optional[float]:
    """Restart time for recovery cells; ``None`` for everything else."""
    if cell.fault == "crash_restart_late":
        return RESTART_LATE_AT
    if cell.fault in ("crash_restart_early", "crash_restart_resolver"):
        return RESTART_EARLY_AT
    return None


def expected_rejoin_outcome(cell: CampaignCell) -> Optional[str]:
    """The recovery oracle's verdict for the restarted victim."""
    if cell.fault == "crash_restart_late":
        return "confirmed-abort"
    if cell.fault in ("crash_restart_early", "crash_restart_resolver"):
        return "rejoined"
    return None


def _observe_paper_base(
    cell: CampaignCell, run_until: Optional[float] = None
) -> _Observation:
    from repro.workloads.generator import expected_general_messages, general_case

    victims, crash_at = _crash_spec(cell)
    names = [canonical_name(i) for i in range(cell.n)]
    knobs = _fault_knobs(cell, names)
    scenario = general_case(
        cell.n, cell.p, cell.q,
        latency=ConstantLatency(1.0), seed=cell.seed,
        ack_timeout=ACK_TIMEOUT, max_retries=MAX_RETRIES,
        crashes=[(v, crash_at) for v in victims],
        **knobs,
    )
    result = scenario.run(
        until=RUN_UNTIL if run_until is None else run_until,
        max_events=2_000_000,
    )
    survivors = tuple(n for n in names if n not in victims)
    finished = all(
        runner.finished
        for name, runner in result.runners.items()
        if name not in victims
    )
    handled: dict[str, str] = {}
    double: list[str] = []
    for name, participant in result.participants.items():
        seen = set()
        for execution in participant.handler_log:
            key = (execution.action, execution.incarnation)
            if key in seen:
                double.append(
                    f"{name} handled twice in {execution.action} "
                    f"incarnation {execution.incarnation}"
                )
            seen.add(key)
            if execution.action == "A1":
                handled[name] = execution.exception
    measured = result.resolution_message_total()
    expected = (
        expected_general_messages(cell.n, cell.p, cell.q)
        if cell.fault == "none"
        else None
    )
    problems: list[str] = []
    if finished and not victims:
        missing = set(names) - set(handled)
        if missing:
            problems.append(
                f"completeness: {sorted(missing)} never started the "
                "resolved handler"
            )
    return _Observation(
        finished=finished, handled=handled, double_handled=double,
        problems=problems, measured=measured, expected=expected,
        crashed=victims, survivors=survivors,
        sim_duration=result.duration, runtime=result.runtime,
    )


def _trace_handled(runtime, category: str) -> tuple[dict[str, str], list[str]]:
    """(who handled what, double-activation violations) from handle traces."""
    handled: dict[str, str] = {}
    double: list[str] = []
    for entry in runtime.trace.by_category(category):
        if entry.subject in handled:
            double.append(f"{entry.subject} activated a handler twice")
        handled[entry.subject] = entry.details.get("exception", "?")
    return handled, double


def _observe_paper_ct(
    cell: CampaignCell, run_until: Optional[float] = None
) -> _Observation:
    import shutil
    import tempfile

    from repro.core.crash_tolerant import ct_expected_messages, run_crash_tolerant

    victims, crash_at = _crash_spec(cell)
    names = [canonical_name(i) for i in range(cell.n)]
    knobs = _fault_knobs(cell, names)
    restart_at = restart_spec(cell)
    wal_dir: Optional[str] = None
    if restart_at is not None:
        # Recovery cells run over real per-node WAL files: the restart
        # path must exercise scan/replay/undo against actual bytes, not a
        # mocked log.  (fsync itself stays off — simulated time.)
        wal_dir = tempfile.mkdtemp(prefix="repro-wal-")
        knobs.update(restart_at=restart_at, durable_dir=wal_dir)
    try:
        result = run_crash_tolerant(
            cell.n, raisers=cell.p, nested=cell.q,
            crash=victims, crash_at=crash_at,
            raise_at=RAISE_AT, seed=cell.seed, latency=ConstantLatency(1.0),
            hb_interval=HB_INTERVAL, hb_timeout=HB_TIMEOUT,
            abort_duration=ABORT_DURATION,
            ack_timeout=ACK_TIMEOUT, max_retries=MAX_RETRIES,
            run_until=RUN_UNTIL if run_until is None else run_until,
            **knobs,
        )
        problems: list[str] = []
        handled, double = _trace_handled(result.runtime, "ct.handle")
        survivors = tuple(n for n in names if n not in victims)
        if restart_at is not None:
            problems.extend(_check_recovery(cell, result))
            # A rejoined returnee ran the resolved handler: it re-enters
            # the agreement and exactly-once oracles alongside survivors.
            rejoined = tuple(
                v for v in victims
                if result.participants[v].rejoin_outcome == "rejoined"
            )
            handled = {
                n: e for n, e in handled.items()
                if n in survivors or n in rejoined
            }
        else:
            handled = {n: e for n, e in handled.items() if n in survivors}
        finished = all(n in handled for n in survivors)
        measured = result.protocol_messages()
        expected = (
            ct_expected_messages(cell.n, cell.p, cell.q)
            if cell.fault == "none"
            else None
        )
        return _Observation(
            finished=finished, handled=handled, double_handled=double,
            problems=problems, measured=measured, expected=expected,
            crashed=victims, survivors=survivors,
            sim_duration=result.runtime.sim.now, runtime=result.runtime,
        )
    finally:
        if wal_dir is not None:
            shutil.rmtree(wal_dir, ignore_errors=True)


def _check_recovery(cell: CampaignCell, result) -> list[str]:
    """The recovery oracle: the crashed node rejoined or confirmed abort.

    Checks, per restarted victim: (a) the rejoin outcome matches the
    cell's fault (early restart -> ``rejoined``, late -> standing
    ``confirmed-abort``); (b) its WAL replay actually undid the work
    transaction the crash cut short; (c) its durable object state is back
    to the initial snapshot; (d) a rejoined victim handled the same
    exception the survivors did (the agreement oracle re-checks this
    globally once the victim is folded into ``handled``).
    """
    problems: list[str] = []
    want = expected_rejoin_outcome(cell)
    for victim in result.restarted:
        participant = result.participants[victim]
        outcome = participant.rejoin_outcome
        if outcome != want:
            problems.append(
                f"recovery: {victim} outcome {outcome!r}, wanted {want!r}"
            )
        store = (result.stores or {}).get(victim)
        if store is None:
            problems.append(f"recovery: {victim} has no durable store")
            continue
        if not store.recovered_incomplete:
            problems.append(
                f"recovery: {victim} WAL replay undid no transactions "
                "(the crash cut its work transaction short)"
            )
        obj = next(iter(store.objects.values()))
        if obj.snapshot() != {"progress": None}:
            problems.append(
                f"recovery: {victim} durable state not rolled back: "
                f"{obj.snapshot()}"
            )
        if want == "rejoined" and participant.handled is None:
            problems.append(
                f"recovery: {victim} rejoined but never ran a handler"
            )
    return problems


def _observe_paper_mc(
    cell: CampaignCell, run_until: Optional[float] = None
) -> _Observation:
    from repro.core.multicast_variant import (
        expected_multicast_operations,
        run_multicast_resolution,
    )

    victims, crash_at = _crash_spec(cell)
    names = [canonical_name(i) for i in range(cell.n)]
    knobs = _fault_knobs(cell, names)
    result = run_multicast_resolution(
        cell.n, cell.p, cell.q, seed=cell.seed,
        latency=ConstantLatency(1.0), raise_at=RAISE_AT,
        ack_timeout=ACK_TIMEOUT, max_retries=MAX_RETRIES,
        crash=victims, crash_at=crash_at,
        run_until=RUN_UNTIL if run_until is None else run_until,
        **knobs,
    )
    handled, double = _trace_handled(result.runtime, "mc.handle")
    survivors = tuple(n for n in names if n not in victims)
    handled = {n: e for n, e in handled.items() if n in survivors}
    finished = all(n in handled for n in survivors)
    measured = result.multicast_operations()
    expected = (
        expected_multicast_operations(cell.n, cell.p, cell.q)
        if cell.fault == "none"
        else None
    )
    return _Observation(
        finished=finished, handled=handled, double_handled=double,
        measured=measured, expected=expected,
        crashed=victims, survivors=survivors,
        sim_duration=result.runtime.sim.now, runtime=result.runtime,
    )


def _observe_paper_cd(
    cell: CampaignCell, run_until: Optional[float] = None
) -> _Observation:
    from repro.core.centralized_variant import (
        expected_centralized_messages,
        run_centralized,
    )

    victims, crash_at = _crash_spec(cell)
    names = [canonical_name(i) for i in range(cell.n)]
    knobs = _fault_knobs(cell, [*names, "coord"])
    coord_crash = CRASH_AT if "coord" in victims else None
    participant_victims = tuple(v for v in victims if v != "coord")
    result = run_centralized(
        cell.n, raisers=cell.p, seed=cell.seed,
        latency=ConstantLatency(1.0), raise_at=RAISE_AT,
        coordinator_crashes_at=coord_crash,
        run_until=RUN_UNTIL if run_until is None else run_until,
        ack_timeout=ACK_TIMEOUT, max_retries=MAX_RETRIES,
        crash=participant_victims, crash_at=crash_at,
        **knobs,
    )
    handled, double = _trace_handled(result.runtime, "cd.handle")
    survivors = tuple(n for n in names if n not in victims)
    handled = {n: e for n, e in handled.items() if n in survivors}
    finished = all(n in handled for n in survivors)
    measured = result.total_messages()
    expected = (
        expected_centralized_messages(cell.n, cell.p)
        if cell.fault == "none"
        else None
    )
    return _Observation(
        finished=finished, handled=handled, double_handled=double,
        measured=measured, expected=expected,
        crashed=victims, survivors=survivors,
        sim_duration=result.runtime.sim.now, runtime=result.runtime,
    )


def _observe_fuzz(
    cell: CampaignCell, run_until: Optional[float] = None
) -> _Observation:
    from repro.workloads.fuzz import build_random_scenario, check_invariants

    scenario, plan = build_random_scenario(
        cell.seed, n_participants=cell.n, random_latency=True
    )
    names = [f"O{i:02d}" for i in range(cell.n)]
    knobs = _fault_knobs(cell, names)
    victims: tuple[str, ...] = ()
    if cell.fault == "crash":
        victims = (names[-1],)
        scenario.crashes = [(victims[0], FUZZ_CRASH_AT)]
    scenario.failure_plan = knobs.get("failure_plan")
    scenario.reliable = knobs.get("reliable", False)
    scenario.max_retries = MAX_RETRIES
    result = scenario.run(
        until=RUN_UNTIL if run_until is None else run_until,
        max_events=2_000_000,
    )
    problems = check_invariants(result, plan, crashed=victims)
    finished = not any(p.startswith("non-termination") for p in problems)
    problems = [p for p in problems if not p.startswith("non-termination")]
    return _Observation(
        finished=finished, problems=problems,
        crashed=victims,
        survivors=tuple(n for n in names if n not in victims),
        sim_duration=result.duration, runtime=result.runtime,
    )


def _observe_paper_cr(
    cell: CampaignCell, run_until: Optional[float] = None
) -> _Observation:
    """The Campbell–Randell baseline (schedule explorer and conformance
    kit only: not part of the default campaign matrix, and fault axes
    beyond ``none`` are not modelled for it — ``run_until`` is likewise
    ignored, the baseline runs to quiescence).  Agreement is checked on
    the *resolved* exception — CR participants legitimately handle
    different covers of it."""
    from repro.core.cr_baseline import run_cr_concurrent

    if cell.fault != "none":
        raise ValueError(
            f"CR baseline cells support only fault 'none', got {cell.fault!r}"
        )
    result = run_cr_concurrent(
        cell.n, raisers=cell.p, seed=cell.seed,
        latency=ConstantLatency(1.0), raise_at=RAISE_AT,
    )
    names = [canonical_name(i) for i in range(cell.n)]
    handled: dict[str, str] = {}
    double: list[str] = []
    for entry in result.runtime.trace.by_category("cr.handle"):
        if entry.subject in handled:
            double.append(f"{entry.subject} activated a handler twice")
        handled[entry.subject] = entry.details.get("resolved", "?")
    finished = all(name in handled for name in names)
    return _Observation(
        finished=finished, handled=handled, double_handled=double,
        measured=result.total_messages(), expected=None,
        survivors=tuple(names),
        sim_duration=result.runtime.sim.now, runtime=result.runtime,
    )


_OBSERVERS: dict[tuple[str, str], Callable[..., _Observation]] = {
    ("paper", "base"): _observe_paper_base,
    ("paper", "ct"): _observe_paper_ct,
    ("paper", "mc"): _observe_paper_mc,
    ("paper", "cd"): _observe_paper_cd,
    ("paper", "cr"): _observe_paper_cr,
    ("fuzz", "base"): _observe_fuzz,
}


def observe_cell(
    cell: CampaignCell, run_until: Optional[float] = None
) -> _Observation:
    """Run one cell's observer (raises on harness error — callers that
    need the never-raises contract use :func:`run_cell`).

    ``run_until`` overrides the campaign-wide :data:`RUN_UNTIL` horizon —
    the conformance harness shortens it on the wall-clocked asyncio
    backend, where simulated time units cost real seconds.
    """
    observer = _OBSERVERS.get((cell.family, cell.variant))
    if observer is None:
        raise ValueError(
            f"no observer for family={cell.family} variant={cell.variant}"
        )
    if cell.fault in RECOVERY_FAULTS and cell.variant != "ct":
        raise ValueError(
            f"recovery fault {cell.fault!r} requires the ct variant "
            "(only the crash-tolerant extension has a rejoin protocol)"
        )
    return observer(cell, run_until=run_until)


# -- oracles ---------------------------------------------------------------------


def _apply_sabotage(cell: CampaignCell, obs: _Observation) -> None:
    """Seed a violation into the observation (oracle self-test support)."""
    if cell.sabotage is None:
        return
    if cell.sabotage == "disagree":
        if obs.handled:
            first = sorted(obs.handled)[0]
            obs.handled[first] = obs.handled[first] + "__SABOTAGED"
        else:
            obs.handled.update({"X1": "ExcA", "X2": "ExcB"})
    elif cell.sabotage == "double":
        obs.double_handled.append("sabotage: seeded double activation")
    elif cell.sabotage == "count":
        obs.measured = (obs.measured or 0) + 1
        if obs.expected is None:
            obs.expected = obs.measured - 1
    elif cell.sabotage == "stall":
        obs.finished = False
    elif cell.sabotage == "rejoin":
        obs.problems.append(
            "sabotage: seeded recovery violation (rejoin outcome flipped)"
        )
    else:
        raise ValueError(f"unknown sabotage: {cell.sabotage}")


def _check_oracles(cell: CampaignCell, obs: _Observation) -> list[str]:
    violations = list(obs.problems)
    if len(set(obs.handled.values())) > 1:
        violations.append(f"handler disagreement: {obs.handled}")
    violations.extend(
        f"exactly-once violated: {entry}" for entry in obs.double_handled
    )
    if obs.expected is not None and obs.measured != obs.expected:
        violations.append(
            f"message-count mismatch: measured {obs.measured}, "
            f"expected {obs.expected}"
        )
    return violations


def classify_observation(
    cell: CampaignCell, obs: _Observation
) -> tuple[str, tuple[str, ...]]:
    """Apply the invariant oracles to one observation.

    Shared by the fault campaigns and the schedule explorer, so a
    violation means the same thing whichever harness found it.
    """
    violations = tuple(_check_oracles(cell, obs))
    if violations:
        classification = INVARIANT_VIOLATION
    elif not obs.finished:
        classification = (
            STALLED_EXPECTED if stall_expected(cell) else STALLED_BUG
        )
    else:
        classification = OK
    return classification, violations


def run_cell(cell: CampaignCell) -> CellOutcome:
    """Run one cell and classify it.  Never raises: harness failures come
    back as ``CRASHED-HARNESS`` outcomes so one broken cell cannot take a
    campaign down."""
    if (cell.family, cell.variant) not in _OBSERVERS:
        return CellOutcome(
            cell, CRASHED_HARNESS,
            detail=f"no observer for family={cell.family} variant={cell.variant}",
        )
    try:
        obs = observe_cell(cell)
    except Exception:  # noqa: BLE001 — any harness error becomes an outcome
        return CellOutcome(
            cell, CRASHED_HARNESS, detail=traceback.format_exc()
        )
    _apply_sabotage(cell, obs)
    classification, violations = classify_observation(cell, obs)
    return CellOutcome(
        cell, classification, violations=violations,
        measured=obs.measured, expected=obs.expected,
        sim_duration=obs.sim_duration,
    )


def export_cell_trace(cell: CampaignCell, out_dir) -> "Path":
    """Re-run one cell and dump its causal trace for post-mortem analysis.

    Writes ``<cell_id>.chrome.json`` (Perfetto / ``chrome://tracing``
    loadable) and ``<cell_id>.tree.txt`` under ``out_dir`` and returns the
    chrome path.  Stalled cells are the target audience: a crashed or
    stuck member's resolution span stays *open*, so the dump shows exactly
    which participant never left which protocol state.  Sabotage is
    stripped before the re-run — sabotage perturbs observations, not the
    simulation, so there is nothing of it to see in a trace.
    """
    import json
    from pathlib import Path

    from repro.obs import render_span_tree, spans_to_chrome

    observer = _OBSERVERS.get((cell.family, cell.variant))
    if observer is None:
        raise ValueError(
            f"no observer for family={cell.family} variant={cell.variant}"
        )
    obs = observer(replace(cell, sabotage=None))
    runtime = obs.runtime
    if runtime is None or not runtime.spans.enabled:
        raise RuntimeError(
            f"cell {cell.cell_id} produced no spans (trace level below FULL)"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = cell.cell_id.replace(":", "_")
    doc = spans_to_chrome(
        runtime.spans,
        process_name=f"repro:{cell.cell_id}",
        end_time=runtime.sim.now,
    )
    chrome_path = out / f"{stem}.chrome.json"
    chrome_path.write_text(json.dumps(doc, indent=1) + "\n")
    (out / f"{stem}.tree.txt").write_text(
        render_span_tree(runtime.spans) + "\n"
    )
    return chrome_path


# -- matrix + campaign ------------------------------------------------------------


def default_matrix(smoke: bool = False, seed: int = 0) -> list[CampaignCell]:
    """The default campaign: fuzzed paper shapes x variants x faults, plus
    random nested worlds x faults.

    Full: 10 shapes x 4 variants x 6 faults + 10 fuzz worlds x 5 faults
    = 290 cells.  Smoke: 2 shapes + 2 worlds = 58 cells (the CI gate).
    """
    import random

    rng = random.Random(seed)
    n_shapes = 2 if smoke else 10
    n_fuzz = 2 if smoke else 10
    shapes: list[tuple[int, int, int]] = []
    while len(shapes) < n_shapes:
        n = rng.randint(3, 8)
        p = rng.randint(1, n)
        q = rng.randint(0, n - p)
        if (n, p, q) not in shapes:
            shapes.append((n, p, q))
    cells = [
        CampaignCell("paper", variant, fault, n, p, q, seed=seed)
        for (n, p, q) in shapes
        for variant in VARIANTS
        for fault in FAULTS
    ]
    cells.extend(
        CampaignCell(
            "fuzz", "base", fault, n=4 + (i % 2), seed=seed * 1000 + i
        )
        for i in range(n_fuzz)
        for fault in FUZZ_FAULTS
    )
    return cells


def recovery_matrix(smoke: bool = False, seed: int = 0) -> list[CampaignCell]:
    """The crash-restart recovery campaign (E28, ``BENCH_recovery.json``).

    Fuzzed paper shapes x the three recovery faults on the crash-tolerant
    variant — every cell runs a real WAL per node, crashes the victim
    mid-protocol (mid-*abortion* when the shape has nested members) and
    restarts its node, asserting the victim rejoins with the agreed
    handler (early/resolver restarts) or confirms its abort (late).  Each
    shape also runs fault-free to re-prove the exact Section 4.4 count
    with the durable layer attached — durability must not cost messages.

    Full: 8 shapes x 4 = 32 cells.  Smoke: 2 shapes x 4 = 8 (the CI
    ``recovery-smoke`` gate).  Kept out of :func:`default_matrix` so the
    long-tracked ``BENCH_faults.json`` trajectory stays comparable.
    """
    import random

    rng = random.Random(seed)
    n_shapes = 2 if smoke else 8
    shapes: list[tuple[int, int, int]] = []
    while len(shapes) < n_shapes:
        n = rng.randint(3, 8)
        p = rng.randint(1, n)
        q = rng.randint(0, n - p)
        if (n, p, q) not in shapes:
            shapes.append((n, p, q))
    if not any(q for (_, _, q) in shapes):
        # Always cover the crash-mid-abortion path at least once.
        n, p, _ = shapes[-1]
        if p == n:
            n, p = n + 1, p
        shapes[-1] = (n, p, 1)
    return [
        CampaignCell("paper", "ct", fault, n, p, q, seed=seed)
        for (n, p, q) in shapes
        for fault in (*RECOVERY_FAULTS, "none")
    ]


def recovery_oracle_selftest(seed: int = 0) -> list[str]:
    """Sabotage pass for the recovery oracle (returns problems; [] = good).

    Mirrors :func:`oracle_selftest` for the E28 rows: a healthy recovery
    cell must classify ``OK``, and the same cell with a seeded recovery
    violation must flip to ``INVARIANT-VIOLATION``.
    """
    base = CampaignCell(
        "paper", "ct", "crash_restart_early", n=5, p=2, q=0, seed=seed
    )
    problems: list[str] = []
    healthy = run_cell(base)
    if healthy.classification != OK:
        problems.append(
            f"recovery self-test baseline not OK: {healthy.classification} "
            f"{healthy.violations or healthy.detail}"
        )
    sabotaged = run_cell(replace(base, sabotage="rejoin"))
    if sabotaged.classification != INVARIANT_VIOLATION:
        problems.append(
            "recovery sabotage not caught: classified "
            f"{sabotaged.classification}, wanted {INVARIANT_VIOLATION}"
        )
    return problems


@dataclass
class CampaignReport:
    """Aggregated campaign result, JSON-able for ``BENCH_faults.json``."""

    outcomes: list[CellOutcome]

    def counts(self) -> dict[str, int]:
        tally = {classification: 0 for classification in CLASSIFICATIONS}
        for outcome in self.outcomes:
            tally[outcome.classification] += 1
        return tally

    def failures(self) -> list[CellOutcome]:
        return [outcome for outcome in self.outcomes if outcome.bad]

    @property
    def ok(self) -> bool:
        return not self.failures()

    def to_payload(self) -> dict:
        return {
            "cells": len(self.outcomes),
            "counts": self.counts(),
            "ok": self.ok,
            "failures": [
                {
                    "cell": outcome.cell.cell_id,
                    "classification": outcome.classification,
                    "violations": list(outcome.violations),
                    "detail": outcome.detail,
                    "repro": outcome.cell.repro_command(),
                }
                for outcome in self.failures()
            ],
            "outcomes": [
                {
                    "cell": outcome.cell.cell_id,
                    "classification": outcome.classification,
                    "violations": list(outcome.violations),
                    "measured": outcome.measured,
                    "expected": outcome.expected,
                    "sim_duration": outcome.sim_duration,
                }
                for outcome in self.outcomes
            ],
        }


def run_campaign(
    cells: Sequence[CampaignCell],
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> CampaignReport:
    """Fan the cells out over a process pool and aggregate the outcomes."""
    outcomes = parallel_map(
        run_cell, list(cells),
        max_workers=max_workers, chunk_size=chunk_size, progress=progress,
    )
    return CampaignReport(outcomes)


def oracle_selftest(seed: int = 0) -> list[str]:
    """Check the oracles catch seeded violations (returns problems; [] = good).

    Takes one healthy cell, plants each sabotage into its observation and
    verifies the classification flips as designed.  A campaign whose
    oracles cannot see planted bugs proves nothing — run this before
    trusting a green table.
    """
    base = CampaignCell("paper", "base", "none", n=4, p=2, q=1, seed=seed)
    healthy = run_cell(base)
    problems = []
    if healthy.classification != OK:
        problems.append(
            f"self-test baseline not OK: {healthy.classification} "
            f"{healthy.violations or healthy.detail}"
        )
    wanted = {
        "disagree": INVARIANT_VIOLATION,
        "double": INVARIANT_VIOLATION,
        "count": INVARIANT_VIOLATION,
        "stall": STALLED_BUG,
    }
    for sabotage, expected_class in wanted.items():
        outcome = run_cell(replace(base, sabotage=sabotage))
        if outcome.classification != expected_class:
            problems.append(
                f"sabotage {sabotage!r} not caught: classified "
                f"{outcome.classification}, wanted {expected_class}"
            )
    return problems
