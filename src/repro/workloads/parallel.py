"""Process-parallel parameter sweeps.

Sweep points are independent, seeded, deterministic simulations — the ideal
shape for process-level parallelism (one Python process per core sidesteps
the GIL entirely).  :class:`ParallelSweepRunner` fans a grid out across a
``multiprocessing`` pool in chunks and reassembles the points in grid
order, so the returned :class:`~repro.workloads.sweeps.SweepResult` is
**bit-identical** to what the serial :func:`~repro.workloads.sweeps.sweep_general`
produces for the same grid and seed: both paths run the exact same
:func:`~repro.workloads.sweeps.measure_point` per (N, P, Q) with the same
per-point seed.

Making the pool actually win
----------------------------

Three mechanisms keep the pool from losing to its own overhead (which it
did, 0.65×, before they existed):

* **Warm pools** — forked worker pools persist between sweeps (keyed by
  start method, worker count and the sweep's shared configuration), so
  repeated sweeps — the shape of every benchmark and campaign — pay the
  fork/import cost once, not per call.  :func:`shutdown_warm_pools`
  releases them explicitly; an ``atexit`` hook does so at interpreter
  exit.
* **Fork-shared read-only tables** — the grid and scenario configuration
  are published in a module global *before* the pool forks; children
  inherit the pages copy-on-write and chunk payloads shrink to bare
  ``(start, stop)`` index ranges instead of re-pickling the configuration
  per chunk.
* **Cost-balanced chunks** — chunk boundaries are auto-tuned from the
  per-cell cost estimate :func:`estimate_point_cost` (the Section 4.4
  message model plus per-point setup), so a grid mixing N=8 and N=500
  cells splits into chunks of comparable *work*, not comparable *length*.

Determinism & caveats
---------------------

* Workers are spawned with the ``fork`` start method by default (no
  pickling of scenario internals; child processes inherit the imported
  modules).  On platforms without ``fork`` the runner silently falls back
  to the serial path unless an explicit ``start_method`` is given.
* ``max_workers=1`` (or a single-point grid) also runs serially — useful
  as a control and on single-core boxes where pool overhead cannot pay
  for itself.  When ``max_workers`` is left to default, the runner also
  falls back to serial on single-core hosts (``_default_workers() == 1``)
  and for grids whose estimated total cost is below
  :attr:`ParallelSweepRunner.POOL_BREAK_EVEN_COST` — dispatch overhead
  would dominate such sweeps.  An explicit ``max_workers >= 2`` always
  pools (that is what the conformance tests use to force both paths).
* Worker failures are wrapped in :class:`SweepWorkerError` carrying the
  failing grid point and the worker's formatted traceback.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import traceback
from typing import Callable, Iterable, Optional, Sequence

from repro.net.latency import LatencyModel
from repro.simkernel.trace import TraceLevel
from repro.workloads.sweeps import (
    SweepPoint,
    SweepResult,
    measure_point,
    measure_point_metrics,
    sweep_general,
    sweep_general_metrics,
)

#: ``(done_points, total_points)`` callback invoked after each finished chunk.
ProgressCallback = Callable[[int, int], None]


#: Modelled fixed cost of measuring one grid point, in the same unit as the
#: Section 4.4 message model (≈ one protocol message of work): scenario
#: assembly scales with N, plus a constant for runtime setup and result
#: collection.
POINT_SETUP_COST = 64
POINT_PER_PARTICIPANT_COST = 8


def estimate_point_cost(n: int, p: int, q: int) -> int:
    """Relative cost estimate for measuring one (N, P, Q) cell.

    The dominant term is the paper's general-case message count
    ``(N-1)(2P+3Q+1)`` — simulated work is proportional to messages — with
    a per-point setup charge so that many tiny cells are not mistaken for
    free.  Used to balance chunk boundaries and to decide whether a sweep
    clears the pool's break-even point; only *relative* magnitudes matter.
    The formula is applied without the (N, P, Q) validation of
    :func:`repro.analysis.formulas.general_messages`: estimating an invalid
    point must not raise here — the point itself fails inside a worker, so
    the error surfaces as a :class:`SweepWorkerError` naming it.
    """
    return (
        (n - 1) * (2 * p + 3 * q + 1)
        + POINT_PER_PARTICIPANT_COST * n
        + POINT_SETUP_COST
    )


class ParallelMapError(RuntimeError):
    """A :func:`parallel_map` worker failed on one item.

    Attributes:
        item: the input item that failed.
        worker_traceback: the traceback formatted inside the worker process.
    """

    def __init__(self, item, worker_traceback: str) -> None:
        super().__init__(
            f"parallel map worker failed on item {item!r}\n"
            f"--- worker traceback ---\n{worker_traceback}"
        )
        self.item = item
        self.worker_traceback = worker_traceback


class SweepWorkerError(RuntimeError):
    """A sweep worker failed on one grid point.

    Attributes:
        point: the ``(n, p, q)`` tuple that failed.
        worker_traceback: the traceback formatted inside the worker process.
    """

    def __init__(self, point: tuple[int, int, int], worker_traceback: str) -> None:
        super().__init__(
            f"sweep worker failed on point (n={point[0]}, p={point[1]}, "
            f"q={point[2]})\n--- worker traceback ---\n{worker_traceback}"
        )
        self.point = point
        self.worker_traceback = worker_traceback


#: Read-only sweep configuration published by the parent *before* the pool
#: forks: ``(grid, latency, seed, trace_level, scenario_kwargs)``.  Workers
#: inherit it copy-on-write, so chunk payloads are bare index ranges.
_SHARED_TABLES: Optional[tuple] = None


def _run_shared_chunk(bounds):
    """Pool worker: measure grid[start:stop] from the fork-shared tables.

    Returns ``("ok", [(index, SweepPoint), ...])`` or
    ``("error", point, formatted_traceback)``.  Errors are returned as data
    (not raised) so the parent can re-raise them with the failing point
    attached instead of an opaque pool traceback.
    """
    start, stop = bounds
    grid, latency, seed, trace_level, scenario_kwargs = _SHARED_TABLES
    measured = []
    for index in range(start, stop):
        n, p, q = grid[index]
        try:
            point = measure_point(
                n, p, q, latency=latency, seed=seed,
                trace_level=trace_level, **scenario_kwargs,
            )
        except Exception:  # noqa: BLE001 — reported verbatim to the parent
            return ("error", (n, p, q), traceback.format_exc())
        measured.append((index, point))
    return ("ok", measured)


def _run_shared_chunk_metrics(bounds):
    """Pool worker: measure one chunk, returning points *and* snapshots.

    Same errors-as-data protocol as :func:`_run_shared_chunk`; each result
    slot is ``(index, SweepPoint, metrics_snapshot)`` with the snapshot
    being the plain dict produced by :meth:`Runtime.metrics_snapshot`
    (picklable, and mergeable in the parent with
    :func:`repro.obs.metrics.merge_snapshots`).
    """
    start, stop = bounds
    grid, latency, seed, trace_level, scenario_kwargs = _SHARED_TABLES
    measured = []
    for index in range(start, stop):
        n, p, q = grid[index]
        try:
            point, snapshot = measure_point_metrics(
                n, p, q, latency=latency, seed=seed,
                trace_level=trace_level, **scenario_kwargs,
            )
        except Exception:  # noqa: BLE001 — reported verbatim to the parent
            return ("error", (n, p, q), traceback.format_exc())
        measured.append((index, point, snapshot))
    return ("ok", measured)


def _default_workers() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


# -- warm pools ------------------------------------------------------------------
#
# Forking a pool costs tens of milliseconds plus the first-task import lag
# in every worker; benchmarks and campaigns run many sweeps back to back,
# so pools are kept warm between calls.  Two caches:
#
# * the *sweep* pool is keyed by the sweep's full shared configuration
#   (workers fork with the tables already in memory — reusable only while
#   the configuration matches bit-for-bit);
# * the *map* pool is keyed by (start_method, workers) only, because
#   parallel_map payloads carry their function and items explicitly.

_sweep_pool: Optional[tuple] = None  # (key, pool)
_map_pool: Optional[tuple] = None  # (key, pool)


def _pool_alive(pool) -> bool:
    try:
        return pool._state == "RUN"  # multiprocessing.pool.RUN
    except AttributeError:  # pragma: no cover — future stdlib change
        return False


def shutdown_warm_pools() -> None:
    """Terminate any cached worker pools (idempotent).

    Tests and long-lived hosts call this to release worker processes
    deterministically; it is also registered via ``atexit``.
    """
    global _sweep_pool, _map_pool
    for cached in (_sweep_pool, _map_pool):
        if cached is not None:
            # A pool may already be half-dead (interpreter teardown after
            # SIGINT, workers reaped by the OS); releasing the rest must
            # not mask the original exit.
            try:
                cached[1].terminate()
                cached[1].join()
            except Exception:  # pragma: no cover — depends on kill timing
                pass
    _sweep_pool = None
    _map_pool = None


atexit.register(shutdown_warm_pools)


def _sweep_pool_for(key, start_method: str, workers: int, shared: tuple):
    """A warm pool whose forked workers hold ``shared`` as their tables.

    ``key`` must capture everything the workers inherited (configuration
    token included); a mismatch tears the old pool down and forks a fresh
    one with the new tables published first.
    """
    global _sweep_pool, _SHARED_TABLES
    if _sweep_pool is not None:
        cached_key, pool = _sweep_pool
        if cached_key == key and _pool_alive(pool):
            return pool
        pool.terminate()
        pool.join()
        _sweep_pool = None
    _SHARED_TABLES = shared
    try:
        context = multiprocessing.get_context(start_method)
        pool = context.Pool(processes=workers)
    finally:
        # The children hold their copy; the parent needs no reference (and
        # keeping one would pin every sweep's tables for the process life).
        _SHARED_TABLES = None
    _sweep_pool = (key, pool)
    return pool


def _map_pool_for(start_method: str, workers: int):
    """A warm pool for :func:`parallel_map` (payload-carrying chunks)."""
    global _map_pool
    key = (start_method, workers)
    if _map_pool is not None:
        cached_key, pool = _map_pool
        if cached_key == key and _pool_alive(pool):
            return pool
        pool.terminate()
        pool.join()
        _map_pool = None
    context = multiprocessing.get_context(start_method)
    pool = context.Pool(processes=workers)
    _map_pool = (key, pool)
    return pool


def _shared_key(
    start_method: str, workers: int, shared: tuple
) -> Optional[tuple]:
    """Cache key for a sweep pool: identity of everything workers inherit.

    ``None`` when the configuration cannot be pickled — such a sweep could
    not have been dispatched to a pool anyway (payloads and results cross
    process boundaries pickled), so the caller surfaces the original
    pickling error by proceeding with a fresh dispatch.
    """
    try:
        token = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 — unpicklable config: no reuse
        return None
    return (start_method, workers, token)


def _acquire_sweep_pool(key, start_method: str, workers: int, shared: tuple):
    """The pool to dispatch one sweep on: ``(pool, transient)``.

    With a picklable configuration (``key`` is not None) the warm cached
    pool is (re)used.  Otherwise a one-shot pool is forked with the tables
    published — fork itself needs no pickling — and the caller tears it
    down after the sweep (``transient=True``).
    """
    if key is not None:
        return _sweep_pool_for(key, start_method, workers, shared), False
    global _SHARED_TABLES
    _SHARED_TABLES = shared
    try:
        context = multiprocessing.get_context(start_method)
        pool = context.Pool(processes=workers)
    finally:
        _SHARED_TABLES = None
    return pool, True


def _discard_pool(pool) -> None:
    """Terminate ``pool`` and drop it from the warm caches if cached.

    Called on the error path: a failed sweep leaves undrained chunks in
    flight, and terminating stops the workers from burning CPU on results
    nobody will read.
    """
    global _sweep_pool, _map_pool
    pool.terminate()
    pool.join()
    if _sweep_pool is not None and _sweep_pool[1] is pool:
        _sweep_pool = None
    if _map_pool is not None and _map_pool[1] is pool:
        _map_pool = None


def _balanced_bounds(
    costs: Sequence[float], target_chunks: int
) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` ranges with near-equal total cost.

    Greedy: close a chunk once its accumulated cost reaches an even share
    of the *remaining* cost, re-targeting after each close — so one huge
    item gets a chunk to itself and the small ones regroup around it.
    Shared by the sweep runner's grid chunking and ``parallel_map``'s
    ``item_costs`` path.
    """
    total_points = len(costs)
    if target_chunks <= 1 or total_points <= 1:
        return [(0, total_points)] if total_points else []
    target_chunks = min(target_chunks, total_points)
    remaining_cost = float(sum(costs))
    remaining_chunks = target_chunks
    bounds: list[tuple[int, int]] = []
    start = 0
    acc = 0.0
    target = remaining_cost / remaining_chunks
    for index, cost in enumerate(costs):
        acc += cost
        stop = index + 1
        if acc >= target and stop < total_points and remaining_chunks > 1:
            bounds.append((start, stop))
            start = stop
            remaining_cost -= acc
            remaining_chunks -= 1
            acc = 0.0
            target = remaining_cost / remaining_chunks
    bounds.append((start, total_points))
    return bounds


def _map_chunk(payload):
    """Pool worker for :func:`parallel_map`: apply ``fn`` to one chunk.

    Returns ``("ok", [(index, result), ...])`` or
    ``("error", item, formatted_traceback)`` — same errors-as-data protocol
    as :func:`_run_chunk`, for the same reason.
    """
    fn, indexed_items = payload
    results = []
    for index, item in indexed_items:
        try:
            value = fn(item)
        except Exception:  # noqa: BLE001 — reported verbatim to the parent
            return ("error", item, traceback.format_exc())
        results.append((index, value))
    return ("ok", results)


def parallel_map(
    fn: Callable,
    items: Sequence,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    start_method: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    cost_hint: Optional[float] = None,
    item_costs: Optional[Sequence[float]] = None,
) -> list:
    """Map a picklable function over items across a process pool, in order.

    The generic engine underneath the sweep runner, reused by the fault
    campaigns: items are chunked, fanned out with the ``fork`` start
    method (serial fallback when unavailable or pointless), and results
    are reassembled in input order — deterministic given a deterministic
    ``fn``.  ``fn`` must be an importable module-level callable (pool
    payloads are pickled even under fork).  A worker exception surfaces as
    :class:`ParallelMapError` carrying the failing item.

    ``cost_hint`` is an optional caller estimate of the *total* work, in
    :func:`estimate_point_cost` units (≈ protocol messages).  When the
    worker count is defaulted and the hint is below
    :attr:`ParallelSweepRunner.POOL_BREAK_EVEN_COST`, the map runs
    serially — pool dispatch would cost more than it saves.  An explicit
    ``max_workers >= 2`` always pools.

    ``item_costs`` (one relative weight per item) switches the default
    fixed-length chunking to cost-balanced boundaries via
    :func:`_balanced_bounds` — for heterogeneous items (the schedule
    explorer's frontier shards vary by orders of magnitude) this keeps a
    giant item from serializing a chunk of small ones behind it.  Ignored
    when an explicit ``chunk_size`` is given.  Chunking never affects
    results, only load balance.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    items = list(items)
    if item_costs is not None and len(item_costs) != len(items):
        raise ValueError(
            f"item_costs has {len(item_costs)} entries for {len(items)} items"
        )
    workers = max_workers if max_workers is not None else _default_workers()
    if start_method is None:
        available = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in available else None
    elif start_method not in multiprocessing.get_all_start_methods():
        raise ValueError(f"start method {start_method!r} not available here")
    below_break_even = (
        max_workers is None
        and cost_hint is not None
        and cost_hint < ParallelSweepRunner.POOL_BREAK_EVEN_COST
    )
    if workers <= 1 or len(items) <= 1 or start_method is None or below_break_even:
        results = []
        for index, item in enumerate(items):
            try:
                results.append(fn(item))
            except Exception:  # noqa: BLE001 — mirror the pooled error shape
                raise ParallelMapError(item, traceback.format_exc()) from None
            if progress is not None:
                progress(index + 1, len(items))
        return results
    indexed = list(enumerate(items))
    if chunk_size is None and item_costs is not None:
        chunks = [
            indexed[start:stop]
            for start, stop in _balanced_bounds(item_costs, workers * 4)
        ]
    else:
        size = chunk_size
        if size is None:
            size = max(1, -(-len(items) // (workers * 4)))
        chunks = [indexed[i : i + size] for i in range(0, len(indexed), size)]
    payloads = [(fn, chunk) for chunk in chunks]
    slots: list = [None] * len(items)
    filled = [False] * len(items)
    done = 0
    pool = _map_pool_for(start_method, workers)
    try:
        for outcome in pool.imap_unordered(_map_chunk, payloads):
            if outcome[0] == "error":
                _, item, worker_tb = outcome
                raise ParallelMapError(item, worker_tb)
            for index, value in outcome[1]:
                slots[index] = value
                filled[index] = True
                done += 1
            if progress is not None:
                progress(done, len(items))
    except BaseException:
        _discard_pool(pool)
        raise
    missing = [i for i, ok in enumerate(filled) if not ok]
    if missing:  # pragma: no cover — indicates a pool bug, not a workload
        raise RuntimeError(f"pool returned no result for indices {missing}")
    return slots


class ParallelSweepRunner:
    """Run (N, P, Q) sweeps across a process pool.

    Args:
        max_workers: pool size; defaults to the usable CPU count.  ``1``
            forces the serial path.  When left to default, small sweeps
            (estimated cost below :attr:`POOL_BREAK_EVEN_COST`) also run
            serially — an explicit ``max_workers >= 2`` always pools.
        chunk_size: grid points per dispatched task.  Defaults to
            cost-balanced chunks targeting ~4 chunks per worker, with
            boundaries tuned by :func:`estimate_point_cost` so mixed-size
            grids split into chunks of comparable work.
        start_method: explicit multiprocessing start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``).  Default: ``"fork"`` when the
            platform offers it, otherwise fall back to serial execution.
        trace_level: trace granularity for every point (``COUNTS`` is the
            fast path; ``FULL`` matches the serial default).
        progress: optional ``(done, total)`` callback, called in the parent
            after each completed chunk.
    """

    #: Minimum estimated sweep cost (in :func:`estimate_point_cost` units,
    #: ≈ protocol messages) for the pool to beat serial when the worker
    #: count was defaulted: below this, chunk dispatch and result pickling
    #: dominate.  Roughly a quarter-second of serial simulation.
    POOL_BREAK_EVEN_COST = 50_000

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._auto_workers = max_workers is None
        self.max_workers = max_workers if max_workers is not None else _default_workers()
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.trace_level = TraceLevel(trace_level)
        self.progress = progress

    # -- public API ------------------------------------------------------------

    def sweep_general(
        self,
        grid: Iterable[tuple[int, int, int]],
        latency: LatencyModel | None = None,
        seed: int = 0,
        **scenario_kwargs,
    ) -> SweepResult:
        """Parallel mirror of :func:`repro.workloads.sweeps.sweep_general`.

        Same signature and same result, re-ordered back to grid order after
        the fan-out; falls back to the serial implementation when a pool
        would not help (or is unavailable).
        """
        grid = list(grid)
        start_method = self._resolve_start_method()
        if self._should_run_serial(grid, start_method):
            result = sweep_general(
                grid, latency=latency, seed=seed,
                trace_level=self.trace_level, **scenario_kwargs,
            )
            if self.progress is not None:
                self.progress(len(grid), len(grid))
            return result
        return self._pooled_sweep(
            grid, latency, seed, start_method, scenario_kwargs
        )

    def sweep_general_metrics(
        self,
        grid: Iterable[tuple[int, int, int]],
        latency: LatencyModel | None = None,
        seed: int = 0,
        **scenario_kwargs,
    ) -> tuple[SweepResult, dict]:
        """Parallel mirror of :func:`repro.workloads.sweeps.sweep_general_metrics`.

        Each worker returns its points alongside per-point metrics
        snapshots; the parent folds them with
        :func:`repro.obs.metrics.merge_snapshots` **in grid order**, so the
        merged snapshot (counter/histogram sums, last-point gauges) is
        identical to the serial path's regardless of pool scheduling.
        """
        grid = list(grid)
        start_method = self._resolve_start_method()
        if self._should_run_serial(grid, start_method):
            result = sweep_general_metrics(
                grid, latency=latency, seed=seed,
                trace_level=self.trace_level, **scenario_kwargs,
            )
            if self.progress is not None:
                self.progress(len(grid), len(grid))
            return result
        return self._pooled_sweep_metrics(
            grid, latency, seed, start_method, scenario_kwargs
        )

    # -- internals -------------------------------------------------------------

    def _resolve_start_method(self) -> Optional[str]:
        available = multiprocessing.get_all_start_methods()
        if self.start_method is not None:
            if self.start_method not in available:
                raise ValueError(
                    f"start method {self.start_method!r} not available here "
                    f"(have: {available})"
                )
            return self.start_method
        # Fork keeps workers cheap and avoids pickling scenario callables;
        # without it (e.g. some non-POSIX platforms) serial is the safe
        # deterministic fallback.
        return "fork" if "fork" in available else None

    def _should_run_serial(
        self,
        grid: Sequence[tuple[int, int, int]],
        start_method: Optional[str],
    ) -> bool:
        """Serial beats the pool for this sweep (or no pool is possible).

        Unconditional serial cases: one worker (including single-core
        hosts, where ``_default_workers()`` is 1), a trivial grid, no
        usable start method.  With a *defaulted* worker count, sweeps whose
        estimated total cost is under :attr:`POOL_BREAK_EVEN_COST` also run
        serially — the 0.65× regime where dispatch overhead dominates.  An
        explicit ``max_workers >= 2`` is an instruction to pool.
        """
        if self.max_workers <= 1 or len(grid) <= 1 or start_method is None:
            return True
        if not self._auto_workers:
            return False
        estimated = sum(estimate_point_cost(n, p, q) for n, p, q in grid)
        return estimated < self.POOL_BREAK_EVEN_COST

    def _chunk_bounds(
        self, grid: Sequence[tuple[int, int, int]]
    ) -> list[tuple[int, int]]:
        """Contiguous ``(start, stop)`` chunk ranges over the grid.

        An explicit ``chunk_size`` gives fixed-length ranges.  Otherwise
        boundaries are cost-balanced: ~4 chunks per worker, each closed
        once its accumulated :func:`estimate_point_cost` reaches an even
        share of the *remaining* cost — so a grid mixing N=8 and N=500
        cells yields chunks of comparable work, not comparable length.
        """
        total_points = len(grid)
        size = self.chunk_size
        if size is not None:
            return [
                (start, min(start + size, total_points))
                for start in range(0, total_points, size)
            ]
        costs = [estimate_point_cost(n, p, q) for n, p, q in grid]
        return _balanced_bounds(costs, self.max_workers * 4)

    def _pooled_sweep(
        self,
        grid: list[tuple[int, int, int]],
        latency: LatencyModel | None,
        seed: int,
        start_method: str,
        scenario_kwargs: dict,
    ) -> SweepResult:
        bounds = self._chunk_bounds(grid)
        workers = min(self.max_workers, len(bounds))
        shared = (grid, latency, seed, self.trace_level, scenario_kwargs)
        key = _shared_key(start_method, workers, shared)
        pool, transient = _acquire_sweep_pool(key, start_method, workers, shared)
        slots: list[Optional[SweepPoint]] = [None] * len(grid)
        done = 0
        try:
            for outcome in pool.imap_unordered(_run_shared_chunk, bounds):
                if outcome[0] == "error":
                    _, point, worker_tb = outcome
                    raise SweepWorkerError(point, worker_tb)
                for index, sweep_point in outcome[1]:
                    slots[index] = sweep_point
                    done += 1
                if self.progress is not None:
                    self.progress(done, len(grid))
        except BaseException:
            _discard_pool(pool)
            raise
        if transient:
            _discard_pool(pool)
        missing = [i for i, slot in enumerate(slots) if slot is None]
        if missing:  # pragma: no cover — indicates a pool bug, not a workload
            raise RuntimeError(f"pool returned no result for indices {missing}")
        return SweepResult(list(slots))

    def _pooled_sweep_metrics(
        self,
        grid: list[tuple[int, int, int]],
        latency: LatencyModel | None,
        seed: int,
        start_method: str,
        scenario_kwargs: dict,
    ) -> tuple[SweepResult, dict]:
        from repro.obs.metrics import merge_snapshots

        bounds = self._chunk_bounds(grid)
        workers = min(self.max_workers, len(bounds))
        shared = (grid, latency, seed, self.trace_level, scenario_kwargs)
        # The metrics variant shares the warm pool with the plain sweep —
        # the forked tables are identical; only the chunk function differs.
        key = _shared_key(start_method, workers, shared)
        pool, transient = _acquire_sweep_pool(key, start_method, workers, shared)
        slots: list[Optional[SweepPoint]] = [None] * len(grid)
        snapshot_slots: list[Optional[dict]] = [None] * len(grid)
        done = 0
        try:
            for outcome in pool.imap_unordered(_run_shared_chunk_metrics, bounds):
                if outcome[0] == "error":
                    _, point, worker_tb = outcome
                    raise SweepWorkerError(point, worker_tb)
                for index, sweep_point, snapshot in outcome[1]:
                    slots[index] = sweep_point
                    snapshot_slots[index] = snapshot
                    done += 1
                if self.progress is not None:
                    self.progress(done, len(grid))
        except BaseException:
            _discard_pool(pool)
            raise
        if transient:
            _discard_pool(pool)
        missing = [i for i, slot in enumerate(slots) if slot is None]
        if missing:  # pragma: no cover — indicates a pool bug, not a workload
            raise RuntimeError(f"pool returned no result for indices {missing}")
        merged = merge_snapshots([s for s in snapshot_slots if s is not None])
        return SweepResult(list(slots)), merged


def parallel_sweep_general(
    grid: Iterable[tuple[int, int, int]],
    latency: LatencyModel | None = None,
    seed: int = 0,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    trace_level: TraceLevel = TraceLevel.FULL,
    progress: Optional[ProgressCallback] = None,
    **scenario_kwargs,
) -> SweepResult:
    """One-shot convenience wrapper around :class:`ParallelSweepRunner`."""
    runner = ParallelSweepRunner(
        max_workers=max_workers,
        chunk_size=chunk_size,
        trace_level=trace_level,
        progress=progress,
    )
    return runner.sweep_general(
        grid, latency=latency, seed=seed, **scenario_kwargs
    )
