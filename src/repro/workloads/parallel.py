"""Process-parallel parameter sweeps.

Sweep points are independent, seeded, deterministic simulations — the ideal
shape for process-level parallelism (one Python process per core sidesteps
the GIL entirely).  :class:`ParallelSweepRunner` fans a grid out across a
``multiprocessing`` pool in chunks and reassembles the points in grid
order, so the returned :class:`~repro.workloads.sweeps.SweepResult` is
**bit-identical** to what the serial :func:`~repro.workloads.sweeps.sweep_general`
produces for the same grid and seed: both paths run the exact same
:func:`~repro.workloads.sweeps.measure_point` per (N, P, Q) with the same
per-point seed.

Determinism & caveats
---------------------

* Workers are spawned with the ``fork`` start method by default (no
  pickling of scenario internals; child processes inherit the imported
  modules).  On platforms without ``fork`` the runner silently falls back
  to the serial path unless an explicit ``start_method`` is given.
* ``max_workers=1`` (or a single-point grid) also runs serially — useful
  as a control and on single-core boxes where pool overhead cannot pay
  for itself.
* Worker failures are wrapped in :class:`SweepWorkerError` carrying the
  failing grid point and the worker's formatted traceback.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Callable, Iterable, Optional, Sequence

from repro.net.latency import LatencyModel
from repro.simkernel.trace import TraceLevel
from repro.workloads.sweeps import (
    SweepPoint,
    SweepResult,
    measure_point,
    measure_point_metrics,
    sweep_general,
    sweep_general_metrics,
)

#: ``(done_points, total_points)`` callback invoked after each finished chunk.
ProgressCallback = Callable[[int, int], None]


class ParallelMapError(RuntimeError):
    """A :func:`parallel_map` worker failed on one item.

    Attributes:
        item: the input item that failed.
        worker_traceback: the traceback formatted inside the worker process.
    """

    def __init__(self, item, worker_traceback: str) -> None:
        super().__init__(
            f"parallel map worker failed on item {item!r}\n"
            f"--- worker traceback ---\n{worker_traceback}"
        )
        self.item = item
        self.worker_traceback = worker_traceback


class SweepWorkerError(RuntimeError):
    """A sweep worker failed on one grid point.

    Attributes:
        point: the ``(n, p, q)`` tuple that failed.
        worker_traceback: the traceback formatted inside the worker process.
    """

    def __init__(self, point: tuple[int, int, int], worker_traceback: str) -> None:
        super().__init__(
            f"sweep worker failed on point (n={point[0]}, p={point[1]}, "
            f"q={point[2]})\n--- worker traceback ---\n{worker_traceback}"
        )
        self.point = point
        self.worker_traceback = worker_traceback


def _run_chunk(payload):
    """Pool worker: measure one chunk of indexed grid points.

    Returns ``("ok", [(index, SweepPoint), ...])`` or
    ``("error", point, formatted_traceback)``.  Errors are returned as data
    (not raised) so the parent can re-raise them with the failing point
    attached instead of an opaque pool traceback.
    """
    indexed_points, latency, seed, trace_level, scenario_kwargs = payload
    measured = []
    for index, (n, p, q) in indexed_points:
        try:
            point = measure_point(
                n, p, q, latency=latency, seed=seed,
                trace_level=trace_level, **scenario_kwargs,
            )
        except Exception:  # noqa: BLE001 — reported verbatim to the parent
            return ("error", (n, p, q), traceback.format_exc())
        measured.append((index, point))
    return ("ok", measured)


def _run_chunk_metrics(payload):
    """Pool worker: measure one chunk, returning points *and* snapshots.

    Same errors-as-data protocol as :func:`_run_chunk`; each result slot is
    ``(index, SweepPoint, metrics_snapshot)`` with the snapshot being the
    plain dict produced by :meth:`Runtime.metrics_snapshot` (picklable, and
    mergeable in the parent with :func:`repro.obs.metrics.merge_snapshots`).
    """
    indexed_points, latency, seed, trace_level, scenario_kwargs = payload
    measured = []
    for index, (n, p, q) in indexed_points:
        try:
            point, snapshot = measure_point_metrics(
                n, p, q, latency=latency, seed=seed,
                trace_level=trace_level, **scenario_kwargs,
            )
        except Exception:  # noqa: BLE001 — reported verbatim to the parent
            return ("error", (n, p, q), traceback.format_exc())
        measured.append((index, point, snapshot))
    return ("ok", measured)


def _default_workers() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _map_chunk(payload):
    """Pool worker for :func:`parallel_map`: apply ``fn`` to one chunk.

    Returns ``("ok", [(index, result), ...])`` or
    ``("error", item, formatted_traceback)`` — same errors-as-data protocol
    as :func:`_run_chunk`, for the same reason.
    """
    fn, indexed_items = payload
    results = []
    for index, item in indexed_items:
        try:
            value = fn(item)
        except Exception:  # noqa: BLE001 — reported verbatim to the parent
            return ("error", item, traceback.format_exc())
        results.append((index, value))
    return ("ok", results)


def parallel_map(
    fn: Callable,
    items: Sequence,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    start_method: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> list:
    """Map a picklable function over items across a process pool, in order.

    The generic engine underneath the sweep runner, reused by the fault
    campaigns: items are chunked, fanned out with the ``fork`` start
    method (serial fallback when unavailable or pointless), and results
    are reassembled in input order — deterministic given a deterministic
    ``fn``.  ``fn`` must be an importable module-level callable (pool
    payloads are pickled even under fork).  A worker exception surfaces as
    :class:`ParallelMapError` carrying the failing item.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    items = list(items)
    workers = max_workers if max_workers is not None else _default_workers()
    if start_method is None:
        available = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in available else None
    elif start_method not in multiprocessing.get_all_start_methods():
        raise ValueError(f"start method {start_method!r} not available here")
    if workers <= 1 or len(items) <= 1 or start_method is None:
        results = []
        for index, item in enumerate(items):
            try:
                results.append(fn(item))
            except Exception:  # noqa: BLE001 — mirror the pooled error shape
                raise ParallelMapError(item, traceback.format_exc()) from None
            if progress is not None:
                progress(index + 1, len(items))
        return results
    size = chunk_size
    if size is None:
        size = max(1, -(-len(items) // (workers * 4)))
    indexed = list(enumerate(items))
    chunks = [indexed[i : i + size] for i in range(0, len(indexed), size)]
    payloads = [(fn, chunk) for chunk in chunks]
    context = multiprocessing.get_context(start_method)
    slots: list = [None] * len(items)
    filled = [False] * len(items)
    done = 0
    with context.Pool(processes=min(workers, len(chunks))) as pool:
        for outcome in pool.imap_unordered(_map_chunk, payloads):
            if outcome[0] == "error":
                _, item, worker_tb = outcome
                raise ParallelMapError(item, worker_tb)
            for index, value in outcome[1]:
                slots[index] = value
                filled[index] = True
                done += 1
            if progress is not None:
                progress(done, len(items))
    missing = [i for i, ok in enumerate(filled) if not ok]
    if missing:  # pragma: no cover — indicates a pool bug, not a workload
        raise RuntimeError(f"pool returned no result for indices {missing}")
    return slots


class ParallelSweepRunner:
    """Run (N, P, Q) sweeps across a process pool.

    Args:
        max_workers: pool size; defaults to the usable CPU count.  ``1``
            forces the serial path.
        chunk_size: grid points per dispatched task.  Defaults to an even
            split targeting ~4 chunks per worker (small enough to balance
            the load, large enough to amortize dispatch overhead).
        start_method: explicit multiprocessing start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``).  Default: ``"fork"`` when the
            platform offers it, otherwise fall back to serial execution.
        trace_level: trace granularity for every point (``COUNTS`` is the
            fast path; ``FULL`` matches the serial default).
        progress: optional ``(done, total)`` callback, called in the parent
            after each completed chunk.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.max_workers = max_workers if max_workers is not None else _default_workers()
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.trace_level = TraceLevel(trace_level)
        self.progress = progress

    # -- public API ------------------------------------------------------------

    def sweep_general(
        self,
        grid: Iterable[tuple[int, int, int]],
        latency: LatencyModel | None = None,
        seed: int = 0,
        **scenario_kwargs,
    ) -> SweepResult:
        """Parallel mirror of :func:`repro.workloads.sweeps.sweep_general`.

        Same signature and same result, re-ordered back to grid order after
        the fan-out; falls back to the serial implementation when a pool
        would not help (or is unavailable).
        """
        grid = list(grid)
        start_method = self._resolve_start_method()
        if self.max_workers <= 1 or len(grid) <= 1 or start_method is None:
            result = sweep_general(
                grid, latency=latency, seed=seed,
                trace_level=self.trace_level, **scenario_kwargs,
            )
            if self.progress is not None:
                self.progress(len(grid), len(grid))
            return result
        return self._pooled_sweep(
            grid, latency, seed, start_method, scenario_kwargs
        )

    def sweep_general_metrics(
        self,
        grid: Iterable[tuple[int, int, int]],
        latency: LatencyModel | None = None,
        seed: int = 0,
        **scenario_kwargs,
    ) -> tuple[SweepResult, dict]:
        """Parallel mirror of :func:`repro.workloads.sweeps.sweep_general_metrics`.

        Each worker returns its points alongside per-point metrics
        snapshots; the parent folds them with
        :func:`repro.obs.metrics.merge_snapshots` **in grid order**, so the
        merged snapshot (counter/histogram sums, last-point gauges) is
        identical to the serial path's regardless of pool scheduling.
        """
        grid = list(grid)
        start_method = self._resolve_start_method()
        if self.max_workers <= 1 or len(grid) <= 1 or start_method is None:
            result = sweep_general_metrics(
                grid, latency=latency, seed=seed,
                trace_level=self.trace_level, **scenario_kwargs,
            )
            if self.progress is not None:
                self.progress(len(grid), len(grid))
            return result
        return self._pooled_sweep_metrics(
            grid, latency, seed, start_method, scenario_kwargs
        )

    # -- internals -------------------------------------------------------------

    def _resolve_start_method(self) -> Optional[str]:
        available = multiprocessing.get_all_start_methods()
        if self.start_method is not None:
            if self.start_method not in available:
                raise ValueError(
                    f"start method {self.start_method!r} not available here "
                    f"(have: {available})"
                )
            return self.start_method
        # Fork keeps workers cheap and avoids pickling scenario callables;
        # without it (e.g. some non-POSIX platforms) serial is the safe
        # deterministic fallback.
        return "fork" if "fork" in available else None

    def _chunks(
        self, grid: Sequence[tuple[int, int, int]]
    ) -> list[list[tuple[int, tuple[int, int, int]]]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(grid) // (self.max_workers * 4)))
        indexed = list(enumerate(grid))
        return [indexed[i : i + size] for i in range(0, len(indexed), size)]

    def _pooled_sweep(
        self,
        grid: list[tuple[int, int, int]],
        latency: LatencyModel | None,
        seed: int,
        start_method: str,
        scenario_kwargs: dict,
    ) -> SweepResult:
        chunks = self._chunks(grid)
        payloads = [
            (chunk, latency, seed, self.trace_level, scenario_kwargs)
            for chunk in chunks
        ]
        workers = min(self.max_workers, len(chunks))
        context = multiprocessing.get_context(start_method)
        slots: list[Optional[SweepPoint]] = [None] * len(grid)
        done = 0
        with context.Pool(processes=workers) as pool:
            for outcome in pool.imap_unordered(_run_chunk, payloads):
                if outcome[0] == "error":
                    _, point, worker_tb = outcome
                    raise SweepWorkerError(point, worker_tb)
                for index, sweep_point in outcome[1]:
                    slots[index] = sweep_point
                    done += 1
                if self.progress is not None:
                    self.progress(done, len(grid))
        missing = [i for i, slot in enumerate(slots) if slot is None]
        if missing:  # pragma: no cover — indicates a pool bug, not a workload
            raise RuntimeError(f"pool returned no result for indices {missing}")
        return SweepResult(list(slots))

    def _pooled_sweep_metrics(
        self,
        grid: list[tuple[int, int, int]],
        latency: LatencyModel | None,
        seed: int,
        start_method: str,
        scenario_kwargs: dict,
    ) -> tuple[SweepResult, dict]:
        from repro.obs.metrics import merge_snapshots

        chunks = self._chunks(grid)
        payloads = [
            (chunk, latency, seed, self.trace_level, scenario_kwargs)
            for chunk in chunks
        ]
        workers = min(self.max_workers, len(chunks))
        context = multiprocessing.get_context(start_method)
        slots: list[Optional[SweepPoint]] = [None] * len(grid)
        snapshot_slots: list[Optional[dict]] = [None] * len(grid)
        done = 0
        with context.Pool(processes=workers) as pool:
            for outcome in pool.imap_unordered(_run_chunk_metrics, payloads):
                if outcome[0] == "error":
                    _, point, worker_tb = outcome
                    raise SweepWorkerError(point, worker_tb)
                for index, sweep_point, snapshot in outcome[1]:
                    slots[index] = sweep_point
                    snapshot_slots[index] = snapshot
                    done += 1
                if self.progress is not None:
                    self.progress(done, len(grid))
        missing = [i for i, slot in enumerate(slots) if slot is None]
        if missing:  # pragma: no cover — indicates a pool bug, not a workload
            raise RuntimeError(f"pool returned no result for indices {missing}")
        merged = merge_snapshots([s for s in snapshot_slots if s is not None])
        return SweepResult(list(slots)), merged


def parallel_sweep_general(
    grid: Iterable[tuple[int, int, int]],
    latency: LatencyModel | None = None,
    seed: int = 0,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    trace_level: TraceLevel = TraceLevel.FULL,
    progress: Optional[ProgressCallback] = None,
    **scenario_kwargs,
) -> SweepResult:
    """One-shot convenience wrapper around :class:`ParallelSweepRunner`."""
    runner = ParallelSweepRunner(
        max_workers=max_workers,
        chunk_size=chunk_size,
        trace_level=trace_level,
        progress=progress,
    )
    return runner.sweep_general(
        grid, latency=latency, seed=seed, **scenario_kwargs
    )
