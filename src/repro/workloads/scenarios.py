"""Scenario assembly and result collection.

A :class:`Scenario` wires action declarations, participant specs (behaviour
+ handlers) and atomic objects into a complete simulated system, runs it,
and returns a :class:`ScenarioResult` with everything the benchmarks and
tests assert on: per-kind and per-action message counts, handler
executions, action outcomes and timing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.abortion import AbortionHandler
from repro.core.action import ActionRegistry, CAActionDef
from repro.core.manager import ActionStatus, CAActionManager
from repro.core.messages import RESOLUTION_KINDS
from repro.core.participant import CAParticipant
from repro.exceptions.handlers import HandlerSet
from repro.net.failures import FailurePlan
from repro.net.latency import LatencyModel
from repro.objects.runtime import Runtime
from repro.simkernel.trace import TraceLevel
from repro.transactions.atomic_object import AtomicObject
from repro.workloads.behaviour import BehaviourRunner, Step


@dataclass
class ParticipantSpec:
    """Everything needed to instantiate one participating object."""

    name: str
    behaviour: Sequence[Step]
    handler_sets: dict[str, HandlerSet]
    abortion_handlers: dict[str, AbortionHandler] = field(default_factory=dict)
    start_delay: float = 0.0
    node_id: Optional[str] = None


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    runtime: Runtime
    manager: CAActionManager
    participants: dict[str, CAParticipant]
    runners: dict[str, BehaviourRunner]
    duration: float

    # -- message accounting ------------------------------------------------------

    def messages_by_kind(self) -> Counter:
        return Counter(self.runtime.network.sent_by_kind)

    def resolution_message_total(self) -> int:
        """Total resolution-protocol messages — the paper's metric."""
        return self.runtime.network.total_sent(set(RESOLUTION_KINDS))

    def messages_for_action(self, action: str) -> Counter:
        """Per-kind resolution messages belonging to one action's protocol."""
        counts: Counter = Counter()
        for entry in self.runtime.trace.by_category("msg.send"):
            if (
                entry.details.get("action") == action
                and entry.details.get("kind") in RESOLUTION_KINDS
            ):
                counts[entry.details["kind"]] += 1
        return counts

    def resolution_messages_for_action(self, action: str) -> int:
        return sum(self.messages_for_action(action).values())

    # -- outcomes -------------------------------------------------------------------

    def status(self, action: str) -> ActionStatus:
        return self.manager.instance(action).status

    def handled_exception(self, action: str):
        return self.manager.instance(action).handled_exception

    def handlers_started(self, action: str) -> dict[str, str]:
        """participant name -> exception name handled, for ``action``."""
        started = {}
        for name, participant in self.participants.items():
            for execution in participant.handler_log:
                if execution.action == action:
                    started[name] = execution.exception
        return started

    def all_finished(self) -> bool:
        return all(runner.finished for runner in self.runners.values())

    def commit_entries(self, action: str):
        return [
            e
            for e in self.runtime.trace.by_category("resolution.commit")
            if e.details.get("action") == action
        ]

    # -- observability ----------------------------------------------------------------

    @property
    def spans(self):
        """The run's causal span forest (empty unless trace level FULL)."""
        return self.runtime.spans

    def metrics_snapshot(self) -> dict:
        """Picklable metrics view (see :meth:`Runtime.metrics_snapshot`)."""
        return self.runtime.metrics_snapshot()


class Scenario:
    """A declarative simulated-system builder."""

    def __init__(
        self,
        actions: Sequence[CAActionDef],
        participants: Sequence[ParticipantSpec],
        atomic_objects: Sequence[AtomicObject] = (),
        seed: int = 0,
        latency: LatencyModel | None = None,
        failure_plan: FailurePlan | None = None,
        reliable: bool = False,
        ack_timeout: float = 5.0,
        max_retries: int = 60,
        crashes: Sequence[tuple[str, float]] = (),
        trace_level: TraceLevel = TraceLevel.FULL,
    ) -> None:
        self.registry = ActionRegistry()
        for definition in actions:
            self.registry.declare(definition)
        self.specs = list(participants)
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate participant names")
        self.atomic_objects = {obj.name: obj for obj in atomic_objects}
        self.seed = seed
        self.latency = latency
        self.failure_plan = failure_plan
        self.reliable = reliable
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.crashes = list(crashes)
        unknown = {victim for victim, _ in self.crashes} - set(names)
        if unknown:
            raise ValueError(f"cannot crash unknown participants: {sorted(unknown)}")
        self.trace_level = TraceLevel(trace_level)

    def build(self) -> tuple[Runtime, CAActionManager, dict, dict]:
        runtime = Runtime(
            seed=self.seed, latency=self.latency,
            failure_plan=self.failure_plan, reliable=self.reliable,
            ack_timeout=self.ack_timeout, max_retries=self.max_retries,
            trace_level=self.trace_level,
        )
        manager = CAActionManager(self.registry)
        participants: dict[str, CAParticipant] = {}
        runners: dict[str, BehaviourRunner] = {}
        for spec in self.specs:
            participant = CAParticipant(
                spec.name,
                self.registry,
                manager,
                spec.handler_sets,
                spec.abortion_handlers,
            )
            runtime.register(participant, node_id=spec.node_id)
            runner = BehaviourRunner(participant, spec.behaviour)
            participants[spec.name] = participant
            runners[spec.name] = runner
        for spec in self.specs:
            runners[spec.name].start(spec.start_delay)
        node_of = {
            spec.name: spec.node_id or f"node:{spec.name}" for spec in self.specs
        }
        for victim, crash_at in self.crashes:
            runtime.sim.schedule(
                crash_at,
                lambda node=node_of[victim]: runtime.crash_node(node),
                label=f"crash:{victim}",
            )
        return runtime, manager, participants, runners

    def run(
        self, until: float | None = None, max_events: int | None = 500_000
    ) -> ScenarioResult:
        runtime, manager, participants, runners = self.build()
        runtime.run(until=until, max_events=max_events)
        return ScenarioResult(
            runtime=runtime,
            manager=manager,
            participants=participants,
            runners=runners,
            duration=runtime.sim.now,
        )
