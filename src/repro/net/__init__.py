"""Simulated network substrate.

Nodes exchange :class:`~repro.net.message.Message` envelopes over per-pair
FIFO channels with configurable latency models and fault injection.  The
network counts every message by kind — the quantity the paper's Section 4.4
analysis is about — and supports a reliable-multicast primitive used by the
Section 4.5 algorithm variant.
"""

from repro.net.channel import Channel
from repro.net.failures import FailureInjector, FailurePlan
from repro.net.latency import (
    BandwidthLatency,
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.membership import GroupMembership, GroupView
from repro.net.message import Message
from repro.net.multicast import ReliableMulticast
from repro.net.network import Network

__all__ = [
    "BandwidthLatency",
    "Channel",
    "ConstantLatency",
    "ExponentialLatency",
    "FailureInjector",
    "FailurePlan",
    "GroupMembership",
    "GroupView",
    "LatencyModel",
    "Message",
    "Network",
    "ReliableMulticast",
    "UniformLatency",
]
