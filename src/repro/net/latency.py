"""Channel latency models.

The paper's message-count analysis is latency-independent, but the
Figure 1 policy comparison (wait vs. abort) and the latency-sensitivity
ablation (experiments E9 and E15 in DESIGN.md) need controllable delay
distributions.  All models draw from a named RNG stream so runs are
reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Strategy producing a per-message transmission delay."""

    #: True when :meth:`sample` never consults the RNG.  The network skips
    #: creating a per-channel random stream for such models — with the
    #: default constant latency that is O(N²) stream seedings saved per run.
    deterministic = False

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Return the delay for one message, in virtual time units."""

    def describe(self) -> str:
        return type(self).__name__


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    deterministic = True

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"latency cannot be negative: {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def describe(self) -> str:
        return f"constant({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid uniform latency bounds: [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Delay ``base + Exp(mean)`` — a long-tailed WAN-like model."""

    def __init__(self, mean: float, base: float = 0.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean latency must be positive: {mean}")
        if base < 0:
            raise ValueError(f"base latency cannot be negative: {base}")
        self.mean = mean
        self.base = base

    def sample(self, rng: random.Random) -> float:
        return self.base + rng.expovariate(1.0 / self.mean)

    def describe(self) -> str:
        return f"exponential(mean={self.mean}, base={self.base})"


class BandwidthLatency(LatencyModel):
    """Propagation delay plus size-dependent serialization time.

    The paper motivates distributed exception handling partly with the
    physics of the wire: software on different nodes "must communicate by
    the exchange of messages over relatively narrow bandwidth
    communication channels.  Thus, the time of message passing is not
    negligible" (Section 2.1).  This model makes that explicit::

        delay = propagation + message_size / bandwidth  (+ jitter)

    The channel samples per message but has no access to the payload, so
    the size is drawn from a configurable distribution (``size_mean`` ±
    ``size_spread``, uniformly) — adequate for studying how shrinking
    bandwidth stretches recovery time while message *counts* stay fixed.
    """

    def __init__(
        self,
        bandwidth: float,
        propagation: float = 0.5,
        size_mean: float = 64.0,
        size_spread: float = 32.0,
        jitter: float = 0.0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        if propagation < 0 or jitter < 0:
            raise ValueError("propagation and jitter cannot be negative")
        if size_mean <= 0 or size_spread < 0 or size_spread > size_mean:
            raise ValueError(
                f"bad size distribution: mean={size_mean}, spread={size_spread}"
            )
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.size_mean = size_mean
        self.size_spread = size_spread
        self.jitter = jitter

    def sample(self, rng: random.Random) -> float:
        size = rng.uniform(
            self.size_mean - self.size_spread, self.size_mean + self.size_spread
        )
        delay = self.propagation + size / self.bandwidth
        if self.jitter:
            delay += rng.uniform(0.0, self.jitter)
        return delay

    def describe(self) -> str:
        return (
            f"bandwidth(bw={self.bandwidth}, prop={self.propagation}, "
            f"size~{self.size_mean}±{self.size_spread})"
        )
