"""Reliable point-to-point delivery over lossy channels.

The resolution algorithm assumes "the general support provided by the
underlying system, including FIFO message sending/receiving between
objects" (Section 4.2), and Section 4.5 asks implementations "to support
reliable message passing".  :class:`ReliableNetwork` provides that support
over the lossy base network: per-pair sequence numbers, positive
acknowledgements, timer-driven retransmission, duplicate suppression and
in-order delivery.

Accounting: ``sent_by_kind`` keeps counting *logical* sends (one per
``send`` call) so the paper's complexity formulas remain checkable;
retransmissions and transport ACKs are tallied separately
(``retransmissions``, ``transport_acks``) — they are the price of the
fault model, not of the algorithm.

Retry exhaustion (a permanently dead destination) does not raise out of
the scheduler: the frame is *dead-lettered* — a ``msg.dead_letter`` trace
event is recorded, ``dead_letters`` incremented and the optional
``on_delivery_failure`` callback invoked — so one unreachable peer fails
one send, not the whole simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.failures import FailureInjector
from repro.net.message import Message
from repro.net.network import Network

KIND_TRANSPORT_ACK = "T_ACK"


@dataclass
class _Frame:
    """Transport envelope: a sequenced user payload."""

    seq: int
    kind: str
    inner: Any

    @property
    def action(self):
        """Expose the wrapped payload's action for per-action tracing."""
        return getattr(self.inner, "action", None)


@dataclass
class _AckFrame:
    seq: int


@dataclass
class _PendingSend:
    frame: _Frame
    src: str
    dst: str
    retries: int = 0
    #: The armed retransmission timer, cancelled on ACK and on
    #: dead-letter so settled frames leave no ghost ``rto:`` events in
    #: the schedule space.
    timer: Any = None


class ReliableDeliveryError(RuntimeError):
    """A frame could not be delivered within the retry budget.

    Kept for API compatibility: exhaustion no longer raises (it
    dead-letters the frame instead), but callers may still use this class
    in their own ``on_delivery_failure`` handling.
    """


class ReliableNetwork(Network):
    """A :class:`Network` with ARQ-style reliable, in-order delivery.

    Messages sent through :meth:`send` are guaranteed to reach a live
    receiver exactly once and in per-pair FIFO order, even when the
    failure plan drops frames.  Liveness requires the destination to stay
    up; ``max_retries`` bounds the wait for a dead one, after which the
    frame is dead-lettered (see module docstring).
    """

    #: Upper layers (e.g. :class:`~repro.net.multicast.ReliableMulticast`)
    #: check this to avoid stacking their own retransmission on top of ARQ.
    provides_reliable_delivery = True

    def __init__(
        self,
        *args,
        ack_timeout: float = 5.0,
        max_retries: int = 60,
        on_delivery_failure: Optional[Callable[["_PendingSend"], None]] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.on_delivery_failure = on_delivery_failure
        self._next_seq: dict[tuple[str, str], int] = {}
        self._expected: dict[tuple[str, str], int] = {}
        self._reorder: dict[tuple[str, str], dict[int, Message]] = {}
        self._pending: dict[tuple[str, str, int], _PendingSend] = {}
        #: Tombstones for dead-lettered frames.  A retransmission already
        #: in flight when the retry budget runs out (channel FIFO can
        #: push its arrival past the final timer) must NOT resurrect the
        #: frame after ``on_delivery_failure`` reported it lost.
        self._dead: set[tuple[str, str, int]] = set()
        self.retransmissions = 0
        self.transport_acks = 0
        self.duplicates_dropped = 0
        self.dead_letters = 0

    # -- sending ------------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: object = None) -> Message:
        if kind == KIND_TRANSPORT_ACK:
            return super().send(src, dst, kind, payload)
        pair = (src, dst)
        seq = self._next_seq.get(pair, 0)
        self._next_seq[pair] = seq + 1
        frame = _Frame(seq, kind, payload)
        pending = _PendingSend(frame, src, dst)
        self._pending[(src, dst, seq)] = pending
        message = super().send(src, dst, kind, frame)
        self._arm_timer(pending)
        return message

    def _arm_timer(self, pending: _PendingSend) -> None:
        pending.timer = self.sim.schedule(
            self.ack_timeout,
            lambda: self._maybe_retransmit(pending),
            label=f"rto:{pending.src}->{pending.dst}:{pending.frame.seq}",
        )

    def _maybe_retransmit(self, pending: _PendingSend) -> None:
        key = (pending.src, pending.dst, pending.frame.seq)
        if key not in self._pending:
            return  # acknowledged in the meantime
        if pending.retries >= self.max_retries:
            # Retry budget exhausted: dead-letter the frame instead of
            # raising out of the scheduler (which would abort the whole
            # simulation for one unreachable destination).
            del self._pending[key]
            self._dead.add(key)
            self.dead_letters += 1
            self.trace.record(
                self.sim.now, "msg.dead_letter", pending.src,
                dst=pending.dst, kind=pending.frame.kind,
                seq=pending.frame.seq, retries=pending.retries,
            )
            if self.spans is not None:
                self.spans.event(
                    f"dead_letter {pending.frame.kind}", "dead_letter",
                    pending.src, self.sim.now, dst=pending.dst,
                    kind=pending.frame.kind, retries=pending.retries,
                )
            if self.on_delivery_failure is not None:
                self.on_delivery_failure(pending)
            # Resynchronize the receive window past the dead frame:
            # without this every later frame on the channel would buffer
            # in ``_reorder`` forever, head-of-line blocked on a seq that
            # will never arrive.  (Loss of the frame was just reported
            # via on_delivery_failure; skipping it preserves FIFO for
            # the survivors.)
            pair = (pending.src, pending.dst)
            seq = pending.frame.seq
            if self._expected.get(pair, 0) == seq:
                self._expected[pair] = seq + 1
                buffered = self._reorder.get(pair, {})
                successor = buffered.pop(seq + 1, None)
                if successor is not None:
                    self._deliver_in_order(pair, successor)
            return
        pending.retries += 1
        self.retransmissions += 1
        # Re-wire directly (bypassing send() so the logical count stays put).
        message = Message(
            src=pending.src, dst=pending.dst, kind=pending.frame.kind,
            payload=pending.frame,
        )
        now = self.sim.now
        fate = self.injector.decide(pending.src, pending.dst, now)
        deliver_at = self._channel(pending.src, pending.dst).stamp(message, now)
        self.trace.record(
            now, "msg.retransmit", pending.src, dst=pending.dst,
            kind=pending.frame.kind, seq=pending.frame.seq,
        )
        if fate != FailureInjector.DROP:
            if fate == FailureInjector.CORRUPT:
                message.corrupted = True
            self._schedule_delivery(message, deliver_at)
        self._arm_timer(pending)

    # -- receiving -----------------------------------------------------------------

    def _deliver(self, message: Message) -> None:
        if message.kind == KIND_TRANSPORT_ACK:
            if message.corrupted:
                # Checksum failure on the ACK itself: a corrupted ACK must
                # NOT cancel retransmission — its seq field is untrusted.
                # Drop it; the retransmission timer re-sends the frame and
                # the receiver re-acknowledges.
                self.trace.record(
                    self.sim.now, "msg.checksum_drop", message.dst,
                    src=message.src, kind=KIND_TRANSPORT_ACK,
                )
                return
            ack: _AckFrame = message.payload
            settled = self._pending.pop((message.dst, message.src, ack.seq), None)
            if settled is not None and settled.timer is not None:
                settled.timer.cancel()
            return
        if not isinstance(message.payload, _Frame):
            super()._deliver(message)
            return
        frame: _Frame = message.payload
        pair = (message.src, message.dst)
        if (message.src, message.dst, frame.seq) in self._dead:
            # The frame was dead-lettered while this retransmission was in
            # flight (channel FIFO clamping can delay a redelivery past the
            # final retry timer).  The sender's on_delivery_failure already
            # reported it lost; delivering now would resurrect a message
            # the upper layer has written off — drop it, unacked.
            self.trace.record(
                self.sim.now, "msg.dead_letter_drop", message.dst,
                src=message.src, kind=frame.kind, seq=frame.seq,
            )
            return
        if message.corrupted:
            # Checksum failure: a corrupted frame is discarded unacked and
            # recovered by retransmission — transient channel errors never
            # reach the algorithm (the paper's non-fail-stop hardware
            # faults, Section 2, made harmless by the transport).
            self.trace.record(
                self.sim.now, "msg.checksum_drop", message.dst,
                src=message.src, seq=frame.seq,
            )
            return
        # Always (re-)acknowledge; ACK loss is covered by retransmission.
        self.transport_acks += 1
        super().send(
            message.dst, message.src, KIND_TRANSPORT_ACK, _AckFrame(frame.seq)
        )
        expected = self._expected.get(pair, 0)
        if frame.seq < expected:
            self.duplicates_dropped += 1
            self.trace.record(
                self.sim.now, "msg.duplicate", message.dst,
                src=message.src, seq=frame.seq,
            )
            return
        if frame.seq > expected:
            self._reorder.setdefault(pair, {})[frame.seq] = message
            return
        self._deliver_in_order(pair, message)

    def _deliver_in_order(self, pair: tuple[str, str], message: Message) -> None:
        frame: _Frame = message.payload
        while True:
            unwrapped = Message(
                src=message.src, dst=message.dst, kind=frame.kind,
                payload=frame.inner, msg_id=message.msg_id,
                send_time=message.send_time, deliver_time=self.sim.now,
                corrupted=message.corrupted,
            )
            self._expected[pair] = frame.seq + 1
            super()._deliver(unwrapped)
            buffered = self._reorder.get(pair, {})
            next_message = buffered.pop(self._expected[pair], None)
            if next_message is None:
                return
            message = next_message
            frame = message.payload
