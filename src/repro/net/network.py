"""The network hub: endpoints, routing, delivery, counting.

Endpoints (distributed objects, action coordinators, transaction managers)
register a name plus a receive callback.  :meth:`Network.send` stamps the
message on the per-pair FIFO channel, lets the failure injector decide its
fate, and schedules delivery on the simulator.  Every send is counted by
message kind — the paper's unit of complexity.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Callable

from repro.net.channel import Channel
from repro.net.failures import FailureInjector
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.simkernel.events import PRIORITY_DELIVERY
from repro.simkernel.rng import RngRegistry
from repro.simkernel.scheduler import Simulator
from repro.simkernel.trace import TraceRecorder

Receiver = Callable[[Message], None]

#: Shared stand-in stream for channels whose latency model is deterministic
#: (it is never actually sampled).
_NULL_RNG = random.Random(0)


class UnknownEndpointError(KeyError):
    """Sent to an endpoint name that was never registered."""


class Network:
    """Message transport between named endpoints over FIFO channels."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        rng: RngRegistry | None = None,
        injector: FailureInjector | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.default_latency = latency if latency is not None else ConstantLatency(1.0)
        self.rng = rng if rng is not None else RngRegistry(0)
        self.injector = injector if injector is not None else FailureInjector(
            rng=self.rng.stream("net.failures")
        )
        self.trace = trace if trace is not None else TraceRecorder()
        #: Span collector (set by the runtime when trace level is FULL);
        #: only rare events (dead letters) emit — never the send path.
        self.spans = None
        #: Wire diversion hook ``(message, deliver_at) -> None``: when set,
        #: delivery is handed to it instead of a kernel timer — the TCP
        #: transport uses this to push every frame through a real socket.
        #: Injection, latency stamping and counting all happen *before*
        #: this point, so the fault model is transport-independent.
        self.deliver_via: Callable[[Message, float], None] | None = None
        self._receivers: dict[str, Receiver] = {}
        self._channels: dict[tuple[str, str], Channel] = {}
        self._latency_overrides: dict[tuple[str, str], LatencyModel] = {}
        self.sent_by_kind: Counter[str] = Counter()
        self.delivered_by_kind: Counter[str] = Counter()

    # -- endpoint management -------------------------------------------------

    def register(self, name: str, receiver: Receiver) -> None:
        """Attach ``receiver`` to endpoint ``name`` (replacing any prior)."""
        self._receivers[name] = receiver

    def unregister(self, name: str) -> None:
        self._receivers.pop(name, None)

    def endpoints(self) -> list[str]:
        return sorted(self._receivers)

    # -- latency configuration ----------------------------------------------

    def set_pair_latency(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override the latency model for the ordered pair ``src → dst``.

        Must be called before the first message on that pair.
        """
        if (src, dst) in self._channels:
            raise RuntimeError(f"channel {src}->{dst} already in use")
        self._latency_overrides[(src, dst)] = model

    def _channel(self, src: str, dst: str) -> Channel:
        key = (src, dst)
        channel = self._channels.get(key)
        if channel is None:
            model = self._latency_overrides.get(key, self.default_latency)
            if model.deterministic:
                # The model never draws: share one dummy stream instead of
                # seeding a named stream per ordered pair (O(N²) of them).
                stream = _NULL_RNG
            else:
                stream = self.rng.stream(f"net.latency.{src}->{dst}")
            channel = Channel(src, dst, model, stream)
            self._channels[key] = channel
        return channel

    # -- sending --------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: object = None) -> Message:
        """Send one message; returns the (already stamped) envelope.

        The message is counted as sent even if the failure injector drops it
        — the sender did the work, which is what the complexity analysis
        charges for.
        """
        if dst not in self._receivers:
            raise UnknownEndpointError(dst)
        message = Message(src=src, dst=dst, kind=kind, payload=payload)
        self.sent_by_kind[kind] += 1
        now = self.sim.now
        fate = self.injector.decide(src, dst, now)
        channel = self._channel(src, dst)
        deliver_at = channel.stamp(message, now)
        trace = self.trace
        if trace.wants_entries:
            trace.record(
                now, "msg.send", src, dst=dst, kind=kind, id=message.msg_id,
                action=getattr(payload, "action", None),
            )
        else:
            trace.tick("msg.send")
        if fate == FailureInjector.DROP:
            message.dropped = True
            if trace.wants_entries:
                trace.record(
                    now, "msg.drop", src, dst=dst, kind=kind, id=message.msg_id
                )
            else:
                trace.tick("msg.drop")
            return message
        if fate == FailureInjector.CORRUPT:
            message.corrupted = True
        self._schedule_delivery(message, deliver_at)
        return message

    def _schedule_delivery(self, message: Message, deliver_at: float) -> None:
        if self.deliver_via is not None:
            self.deliver_via(message, deliver_at)
            return
        self.sim.schedule_at(
            deliver_at,
            lambda: self._deliver(message),
            priority=PRIORITY_DELIVERY,
            label=f"deliver:{message.kind}:{message.src}->{message.dst}",
        )

    def _deliver(self, message: Message) -> None:
        trace = self.trace
        receiver = self._receivers.get(message.dst)
        if receiver is None:
            # Endpoint disappeared (e.g. crashed and deregistered) while the
            # message was in flight: the message is silently lost, matching
            # the non-fail-stop fault model.
            if trace.wants_entries:
                trace.record(
                    self.sim.now, "msg.lost", message.dst, kind=message.kind,
                    id=message.msg_id,
                )
            else:
                trace.tick("msg.lost")
            return
        if self.injector.crashed(message.dst, self.sim.now):
            if trace.wants_entries:
                trace.record(
                    self.sim.now, "msg.lost", message.dst, kind=message.kind,
                    id=message.msg_id,
                )
            else:
                trace.tick("msg.lost")
            return
        self.delivered_by_kind[message.kind] += 1
        if trace.wants_entries:
            trace.record(
                self.sim.now, "msg.recv", message.dst, src=message.src,
                kind=message.kind, id=message.msg_id,
            )
        else:
            trace.tick("msg.recv")
        receiver(message)

    # -- accounting ------------------------------------------------------------

    def total_sent(self, kinds: set[str] | None = None) -> int:
        """Total messages sent, optionally restricted to ``kinds``."""
        if kinds is None:
            return sum(self.sent_by_kind.values())
        return sum(count for kind, count in self.sent_by_kind.items() if kind in kinds)

    def reset_counters(self) -> None:
        self.sent_by_kind.clear()
        self.delivered_by_kind.clear()
