"""The network hub: endpoints, routing, delivery, counting.

Endpoints (distributed objects, action coordinators, transaction managers)
register a name plus a receive callback.  :meth:`Network.send` stamps the
message on the per-pair FIFO channel, lets the failure injector decide its
fate, and schedules delivery on the simulator.  Every send is counted by
message kind — the paper's unit of complexity.
"""

from __future__ import annotations

import random
from collections import Counter
from heapq import heappush
from typing import Callable

from repro.net.channel import Channel
from repro.net.failures import FailureInjector
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net import message as _message_mod
from repro.net.message import Message
from repro.simkernel.events import PRIORITY_DELIVERY
from repro.simkernel.rng import RngRegistry
from repro.simkernel.scheduler import Simulator
from repro.simkernel.trace import SEND_SHAPE, TraceRecorder

Receiver = Callable[[Message], None]

#: Shared stand-in stream for channels whose latency model is deterministic
#: (it is never actually sampled).
_NULL_RNG = random.Random(0)

# Field-name shapes for flat (tuple) trace records: the hot path appends
# ``(shape, v1, v2, ...)`` instead of building a details dict per record;
# the recorder zips shape and values into the dict lazily, only if the
# entries are ever read (see TraceRecorder.entries).  The send shape is the
# recorder's own marker tuple: for those records the payload object itself
# is stored and the ``action`` detail extracted at materialization.
_SEND_FIELDS = SEND_SHAPE
_DROP_FIELDS = ("dst", "kind", "id")
_LOST_FIELDS = ("kind", "id")
_RECV_FIELDS = ("src", "kind", "id")


class UnknownEndpointError(KeyError):
    """Sent to an endpoint name that was never registered."""


class Network:
    """Message transport between named endpoints over FIFO channels."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        rng: RngRegistry | None = None,
        injector: FailureInjector | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.default_latency = latency if latency is not None else ConstantLatency(1.0)
        self.rng = rng if rng is not None else RngRegistry(0)
        self.injector = injector if injector is not None else FailureInjector(
            rng=self.rng.stream("net.failures")
        )
        self.trace = trace if trace is not None else TraceRecorder()
        #: Span collector (set by the runtime when trace level is FULL);
        #: only rare events (dead letters) emit — never the send path.
        self.spans = None
        #: Wire diversion hook ``(message, deliver_at) -> None``: when set,
        #: delivery is handed to it instead of a kernel timer — the TCP
        #: transport uses this to push every frame through a real socket.
        #: Injection, latency stamping and counting all happen *before*
        #: this point, so the fault model is transport-independent.
        self.deliver_via: Callable[[Message, float], None] | None = None
        self._receivers: dict[str, Receiver] = {}
        self._channels: dict[tuple[str, str], Channel] = {}
        #: src -> dst -> Channel mirror of ``_channels``: the hot path does
        #: two plain dict gets on interned endpoint names instead of
        #: building (and hashing) a key tuple per send.
        self._channels_by_src: dict[str, dict[str, Channel]] = {}
        self._latency_overrides: dict[tuple[str, str], LatencyModel] = {}
        #: Network-wide fixed delay when the default model is constant and
        #: no per-pair override exists: the send path then needs no channel
        #: at all — constant delay plus a monotonic clock makes the FIFO
        #: clamp provably a no-op, so neither the per-pair ``Channel``
        #: objects (O(N²) of them) nor their dict lookups are built.
        #: Cleared by :meth:`set_pair_latency`.
        self._uniform_delay = (
            self.default_latency.delay
            if self.default_latency.__class__ is ConstantLatency
            else None
        )
        #: True when ``send`` is not overridden by a subclass; the batched
        #: :meth:`send_many` fast loop is only sound then (a subclass like
        #: ReliableNetwork must see every individual send).
        self._stock_send = type(self).send is Network.send
        self.sent_by_kind: Counter[str] = Counter()
        self.delivered_by_kind: Counter[str] = Counter()
        # Kernel shortcuts for the deterministic Simulator: direct access to
        # its event queue and clock lets the send path skip the
        # schedule_at wrapper (validation + handle) and the ``now``
        # property hop.  Foreign kernels (e.g. the asyncio backend) leave
        # these as None and take the generic path.
        self._sim_queue = getattr(sim, "_queue", None)
        self._sim_clock = getattr(sim, "clock", None)
        #: dst -> the object's live kind-handler dict, for receivers that
        #: are the stock ``DistributedObject.receive`` bound method: the
        #: delivery path then dispatches to the kind handler directly,
        #: skipping the ``receive`` frame.  ``None`` for custom receivers.
        self._targets: dict[str, tuple[Receiver, dict[str, Receiver] | None]] = {}
        # Claim the queue's raw-delivery sink (first network wins): sends
        # may then push (time, priority, seq, message) entries with no
        # Event allocated, and the drain loop hands the message straight
        # to _deliver.
        self._raw_push = False
        queue = self._sim_queue
        if queue is not None and getattr(queue, "message_sink", False) is None:
            queue.message_sink = self._deliver
            self._raw_push = True

    # -- endpoint management -------------------------------------------------

    def register(self, name: str, receiver: Receiver) -> None:
        """Attach ``receiver`` to endpoint ``name`` (replacing any prior)."""
        self._receivers[name] = receiver
        # Alias the object's kind-handler table when the receiver is the
        # un-overridden DistributedObject.receive: handlers registered
        # later via on_kind land in the same (live) dict.  Anything else —
        # plain callables, overridden receive — keeps the generic path.
        kind_map = None
        owner = getattr(receiver, "__self__", None)
        if owner is not None:
            from repro.objects.base import DistributedObject

            if getattr(receiver, "__func__", None) is DistributedObject.receive:
                kind_map = owner._kind_handlers
        # One lookup per delivery: receiver and kind map travel together.
        self._targets[name] = (receiver, kind_map)

    def unregister(self, name: str) -> None:
        self._receivers.pop(name, None)
        self._targets.pop(name, None)

    def endpoints(self) -> list[str]:
        return sorted(self._receivers)

    # -- latency configuration ----------------------------------------------

    def set_pair_latency(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override the latency model for the ordered pair ``src → dst``.

        Must be called before the first message on that pair.
        """
        if (src, dst) in self._channels:
            raise RuntimeError(f"channel {src}->{dst} already in use")
        if self._uniform_delay is not None and self.sent_by_kind:
            # The uniform fast path leaves no per-pair channel record, so
            # the in-use check above cannot see earlier traffic; any prior
            # send may have been on this pair, and rebasing its latency
            # mid-flight would break per-channel FIFO.
            raise RuntimeError(
                "set_pair_latency after traffic on a uniform-latency network"
            )
        self._uniform_delay = None
        self._latency_overrides[(src, dst)] = model

    def _channel(self, src: str, dst: str) -> Channel:
        by_dst = self._channels_by_src.get(src)
        if by_dst is not None:
            channel = by_dst.get(dst)
            if channel is not None:
                return channel
        key = (src, dst)
        channel = self._channels.get(key)
        if channel is None:
            model = self._latency_overrides.get(key, self.default_latency)
            if model.deterministic:
                # The model never draws: share one dummy stream instead of
                # seeding a named stream per ordered pair (O(N²) of them),
                # and build the channel without the ``__init__`` frame —
                # every ordered pair in a large sweep passes through here
                # exactly once, and the N(N-1) constructions add up.
                channel = Channel.__new__(Channel)
                channel.src = src
                channel.dst = dst
                channel.latency = model
                channel._rng = _NULL_RNG
                channel._last_delivery = 0.0
                channel.sent = 0
                channel._fixed = (
                    model.delay if model.__class__ is ConstantLatency else None
                )
            else:
                stream = self.rng.stream(f"net.latency.{src}->{dst}")
                channel = Channel(src, dst, model, stream)
            self._channels[key] = channel
        self._channels_by_src.setdefault(src, {})[dst] = channel
        return channel

    # -- sending --------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: object = None) -> Message:
        """Send one message; returns the (already stamped) envelope.

        The message is counted as sent even if the failure injector drops it
        — the sender did the work, which is what the complexity analysis
        charges for.
        """
        if dst not in self._receivers:
            raise UnknownEndpointError(dst)
        # Message.__init__ unrolled (one envelope per send is one of the
        # hottest allocations in a sweep): send/deliver times are always
        # overwritten by the stamp below, so only the identity fields and
        # fault flags need writing.
        message = Message.__new__(Message)
        message.src = src
        message.dst = dst
        message.kind = kind
        message.payload = payload
        message.msg_id = next(_message_mod._msg_ids)
        message.corrupted = False
        message.dropped = False
        self.sent_by_kind[kind] += 1
        clock = self._sim_clock
        now = clock._now if clock is not None else self.sim.now
        # Fault-free plans (every count sweep) skip the decide() frame; the
        # inline test mirrors decide()'s own fast-return condition.  Only
        # the stock injector class qualifies — subclasses may override
        # decide() with logic beyond the plan.
        injector = self.injector
        plan = injector.plan
        if injector.__class__ is not FailureInjector or (
            plan.crashes
            or plan.partitions
            or plan.drop_probability
            or plan.corrupt_probability
        ):
            fate = injector.decide(src, dst, now)
        else:
            fate = FailureInjector.DELIVER
        # Uniform constant latency (the default, and every count sweep)
        # needs no channel: the delay is network-wide and the sim clock is
        # monotonic, so the per-channel FIFO clamp can never fire.
        delay = self._uniform_delay
        if delay is not None:
            deliver_at = now + delay
            message.send_time = now
            message.deliver_time = deliver_at
        else:
            by_dst = self._channels_by_src.get(src)
            channel = by_dst.get(dst) if by_dst is not None else None
            if channel is None:
                channel = self._channel(src, dst)
            # Constant-latency channels stamp inline (Channel.stamp
            # unrolled); sampled latencies take the call.
            fixed = channel._fixed
            if fixed is not None:
                deliver_at = now + fixed
                last = channel._last_delivery
                if deliver_at < last:
                    deliver_at = last
                channel._last_delivery = deliver_at
                message.send_time = now
                message.deliver_time = deliver_at
                channel.sent += 1
            else:
                deliver_at = channel.stamp(message, now)
        # Trace records are appended inline (no ``record()`` frame) as flat
        # single-tuple records (no details dict, no nested tuple): two
        # records per delivered message is the densest record site in a
        # FULL run.  The payload rides in the record; its ``action`` is
        # extracted only if the entries are ever materialized.
        trace = self.trace
        if trace._full:
            trace._pending.append((
                now, "msg.send", src, _SEND_FIELDS, dst, kind,
                message.msg_id, payload,
            ))
        elif trace._counting:
            trace._counts["msg.send"] += 1
        if fate != FailureInjector.DELIVER:
            if fate == FailureInjector.DROP:
                message.dropped = True
                if trace._full:
                    trace._pending.append((
                        now, "msg.drop", src, _DROP_FIELDS, dst, kind,
                        message.msg_id,
                    ))
                elif trace._counting:
                    trace._counts["msg.drop"] += 1
                return message
            message.corrupted = True  # fate == CORRUPT
        # Delivery fast path: with the deterministic kernel and FIFO
        # tie-breaks, push a *raw* heap entry carrying the message itself —
        # no Event, no closure, no label string, no ScheduledHandle, no
        # schedule_at validation (``deliver_at >= now`` by construction).
        # Controlled (explorer) runs keep the labelled slow path because
        # schedule replay keys on delivery labels.
        if self.deliver_via is None:
            queue = self._sim_queue
            if queue is not None and queue.tie_break is None:
                if self._raw_push:
                    seq = queue._seq
                    queue._seq = seq + 1
                    heappush(
                        queue._heap, (deliver_at, PRIORITY_DELIVERY, seq, message)
                    )
                    queue._live += 1
                else:
                    queue.push(
                        deliver_at, self._deliver, PRIORITY_DELIVERY, "", message
                    )
                return message
        self._schedule_delivery(message, deliver_at)
        return message

    def send_many(
        self, src: str, dsts: list[str], kind: str, payload: object = None
    ) -> list[Message]:
        """Send the same ``payload`` to every name in ``dsts``, in order.

        Semantically identical to ``[send(src, d, kind, payload) for d in
        dsts]`` — same messages, same ids, same counters, same trace
        records, same raised error on an unknown endpoint — but the
        per-send constants (clock read, injector check, latency lookup,
        counter hashes, queue bookkeeping) are hoisted out of the loop.
        Broadcasts (DONE, EXCEPTION, COMMIT, ...) are ~70% of all sends in
        a resolution run, so the hoisting is worth a dedicated entry point.

        The batched loop is only sound on the stock configuration; any
        wrinkle (subclassed ``send``, per-pair latency, wire diversion,
        active fault plan, controlled scheduling, foreign kernel) falls
        back to the per-send loop.
        """
        delay = self._uniform_delay
        queue = self._sim_queue
        injector = self.injector
        plan = injector.plan
        if (
            not self._stock_send
            or delay is None
            or self.deliver_via is not None
            or not self._raw_push
            or queue is None
            or queue.tie_break is not None
            or injector.__class__ is not FailureInjector
            or plan.crashes
            or plan.partitions
            or plan.drop_probability
            or plan.corrupt_probability
        ):
            return [self.send(src, dst, kind, payload) for dst in dsts]
        receivers = self._receivers
        for dst in dsts:
            if dst not in receivers:
                # Replay per-send so the earlier names are sent and
                # UnknownEndpointError raised at the same point it would
                # have been by the plain loop.
                return [self.send(src, d, kind, payload) for d in dsts]
        clock = self._sim_clock
        now = clock._now if clock is not None else self.sim.now
        deliver_at = now + delay
        trace = self.trace
        full = trace._full
        pending = trace._pending
        heap = queue._heap
        seq = queue._seq
        msg_ids = _message_mod._msg_ids
        messages = []
        mappend = messages.append
        for dst in dsts:
            message = Message.__new__(Message)
            message.src = src
            message.dst = dst
            message.kind = kind
            message.payload = payload
            message.msg_id = mid = next(msg_ids)
            message.corrupted = False
            message.dropped = False
            message.send_time = now
            message.deliver_time = deliver_at
            if full:
                pending.append((
                    now, "msg.send", src, _SEND_FIELDS, dst, kind, mid, payload,
                ))
            heappush(heap, (deliver_at, PRIORITY_DELIVERY, seq, message))
            seq += 1
            mappend(message)
        count = len(messages)
        queue._seq = seq
        queue._live += count
        self.sent_by_kind[kind] += count
        if not full and trace._counting:
            trace._counts["msg.send"] += count
        return messages

    def _schedule_delivery(self, message: Message, deliver_at: float) -> None:
        if self.deliver_via is not None:
            self.deliver_via(message, deliver_at)
            return
        queue = self._sim_queue
        if queue is not None and queue.tie_break is None:
            queue.push(deliver_at, self._deliver, PRIORITY_DELIVERY, "", message)
            return
        self.sim.schedule_at(
            deliver_at,
            lambda: self._deliver(message),
            priority=PRIORITY_DELIVERY,
            label=f"deliver:{message.kind}:{message.src}->{message.dst}",
        )

    def _deliver(self, message: Message) -> None:
        trace = self.trace
        dst = message.dst
        kind = message.kind
        clock = self._sim_clock
        now = clock._now if clock is not None else self.sim.now
        target = self._targets.get(dst)
        if target is None:
            # Endpoint disappeared (e.g. crashed and deregistered) while the
            # message was in flight: the message is silently lost, matching
            # the non-fail-stop fault model.
            if trace._full:
                trace._pending.append((
                    now, "msg.lost", dst, _LOST_FIELDS, kind, message.msg_id,
                ))
            elif trace._counting:
                trace._counts["msg.lost"] += 1
            return
        injector = self.injector
        if injector.plan.crashes and injector.crashed(dst, now):
            if trace._full:
                trace._pending.append((
                    now, "msg.lost", dst, _LOST_FIELDS, kind, message.msg_id,
                ))
            elif trace._counting:
                trace._counts["msg.lost"] += 1
            return
        self.delivered_by_kind[kind] += 1
        if trace._full:
            trace._pending.append((
                now, "msg.recv", dst, _RECV_FIELDS, message.src, kind,
                message.msg_id,
            ))
        elif trace._counting:
            trace._counts["msg.recv"] += 1
        # Dispatch straight to the kind handler when the receiver is the
        # stock DistributedObject.receive (skips one frame per delivery);
        # unknown kinds fall back so on_unhandled semantics are preserved.
        kind_map = target[1]
        if kind_map is not None:
            handler = kind_map.get(kind)
            if handler is not None:
                handler(message)
                return
        target[0](message)

    # -- accounting ------------------------------------------------------------

    def total_sent(self, kinds: set[str] | None = None) -> int:
        """Total messages sent, optionally restricted to ``kinds``."""
        if kinds is None:
            return sum(self.sent_by_kind.values())
        return sum(count for kind, count in self.sent_by_kind.items() if kind in kinds)

    def reset_counters(self) -> None:
        self.sent_by_kind.clear()
        self.delivered_by_kind.clear()
