"""Reliable FIFO multicast.

Implements the group-communication primitive that Section 4.5 of the paper
proposes as an implementation vehicle: "If a reliable multicast can be used,
acknowledgement messages will be no longer necessary and so communications
in our algorithm would consist of only several multicasts".

The layer fans a multicast out as unicasts over the FIFO network, and
retransmits any unicast the failure injector dropped until it gets through
(bounded by ``max_retries``; exhaustion dead-letters the unicast — trace
event ``mcast.dead_letter`` — rather than raising out of the scheduler).
When the underlying network already provides reliable delivery
(``provides_reliable_delivery``, e.g. :class:`~repro.net.reliable.ReliableNetwork`),
the layer's own retry loop is skipped — stacking two ARQ loops would
double-count logical sends.  Two counters are kept:

* ``operations`` — logical multicast invocations, the unit the Section 4.5
  variant is charged in (experiment E12);
* underlying unicast sends are counted by the network itself, so benches
  can report both views.
"""

from __future__ import annotations

from collections import Counter

from repro.net.membership import GroupMembership
from repro.net.network import Network


class MulticastDeliveryError(RuntimeError):
    """A member could not be reached within the retry budget.

    Kept for API compatibility: exhaustion no longer raises (the unicast
    is dead-lettered instead); see the module docstring.
    """


class ReliableMulticast:
    """Reliable FIFO multicast to closed groups."""

    def __init__(
        self,
        network: Network,
        membership: GroupMembership,
        retry_delay: float = 1.0,
        max_retries: int = 50,
    ) -> None:
        self.network = network
        self.membership = membership
        self.retry_delay = retry_delay
        self.max_retries = max_retries
        self.operations: Counter[str] = Counter()
        self.dead_letters = 0
        #: Span collector (wired by the runtime at FULL trace level).
        self.spans = None

    def multicast(
        self,
        group: str,
        src: str,
        kind: str,
        payload: object = None,
        include_self: bool = False,
    ) -> int:
        """Multicast ``payload`` to every member of ``group``.

        Returns the number of underlying unicasts initiated (before
        retransmissions).  The sender is excluded unless ``include_self``.
        """
        view = self.membership.view(group)
        targets = view.members if include_self else view.others(src)
        self.operations[kind] += 1
        for dst in targets:
            self._send_reliably(src, dst, kind, payload, attempt=0)
        return len(targets)

    def _send_reliably(
        self, src: str, dst: str, kind: str, payload: object, attempt: int
    ) -> None:
        message = self.network.send(src, dst, kind, payload)
        if not message.dropped:
            return
        if getattr(self.network, "provides_reliable_delivery", False):
            return  # the transport's own ARQ recovers the drop
        if attempt >= self.max_retries:
            self.dead_letters += 1
            self.network.trace.record(
                self.network.sim.now, "mcast.dead_letter", src,
                dst=dst, kind=kind, retries=attempt,
            )
            if self.spans is not None:
                self.spans.event(
                    f"dead_letter {kind}", "dead_letter", src,
                    self.network.sim.now, dst=dst, kind=kind, retries=attempt,
                )
            return
        self.network.sim.schedule(
            self.retry_delay,
            lambda: self._send_reliably(src, dst, kind, payload, attempt + 1),
            label=f"mcast-retry:{kind}:{src}->{dst}",
        )

    def total_operations(self, kinds: set[str] | None = None) -> int:
        if kinds is None:
            return sum(self.operations.values())
        return sum(count for kind, count in self.operations.items() if kind in kinds)
