"""Heartbeat-based failure detection.

The paper's fault model includes node crashes (Section 2) but its
algorithm assumes every participant stays reachable; a crashed peer would
stall resolution forever (the resolver waits for its ACK).  The
crash-tolerant variant (:mod:`repro.core.crash_tolerant`) closes that gap
using this detector: every member periodically heartbeats the group, and
a member whose heartbeats stop for ``timeout`` is *suspected*.

This is an eventually-perfect-style detector under the simulator's fault
model: crashed endpoints never heartbeat again (no false recoveries), but
slow networks can cause false suspicion — consumers must tolerate
messages from suspected peers arriving late, which the variant does.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.net.message import Message
from repro.objects.base import DistributedObject

KIND_HEARTBEAT = "HEARTBEAT"


class Heartbeater:
    """Emits and monitors heartbeats for one object within a peer group."""

    def __init__(
        self,
        obj: DistributedObject,
        peers: Sequence[str],
        interval: float = 2.0,
        timeout: float = 7.0,
        on_suspect: Callable[[str], None] | None = None,
    ) -> None:
        if timeout <= interval:
            raise ValueError(
                f"timeout ({timeout}) must exceed the interval ({interval})"
            )
        self.obj = obj
        self.peers = [p for p in peers if p != obj.name]
        self.interval = interval
        self.timeout = timeout
        self.on_suspect = on_suspect
        self.last_seen: dict[str, float] = {}
        self.suspected: set[str] = set()
        self._running = False
        obj.on_kind(KIND_HEARTBEAT, self._on_heartbeat)

    def start(self) -> None:
        """Begin heartbeating and monitoring (idempotent)."""
        if self._running:
            return
        self._running = True
        now = self.obj.sim_now
        for peer in self.peers:
            self.last_seen[peer] = now
        self._beat()
        self._check()

    def stop(self) -> None:
        self._running = False

    def is_suspected(self, name: str) -> bool:
        return name in self.suspected

    def alive_peers(self) -> list[str]:
        return [p for p in self.peers if p not in self.suspected]

    # -- internals ------------------------------------------------------------

    def _beat(self) -> None:
        if not self._running or self.obj.crashed:
            return
        for peer in self.peers:
            self.obj.send(peer, KIND_HEARTBEAT, None)
        self.obj.runtime.sim.schedule(
            self.interval, self._beat, label=f"hb:{self.obj.name}"
        )

    def _on_heartbeat(self, message: Message) -> None:
        self.last_seen[message.src] = self.obj.sim_now
        if message.src in self.suspected:
            # Late heartbeat from a suspected peer: with crash-only faults
            # this cannot happen, but under message delays it can — we keep
            # the suspicion (decisions already made must stay stable).
            self.obj.runtime.trace.record(
                self.obj.sim_now, "detector.late_heartbeat", self.obj.name,
                peer=message.src,
            )

    def _check(self) -> None:
        if not self._running or self.obj.crashed:
            return
        now = self.obj.sim_now
        for peer in self.peers:
            if peer in self.suspected:
                continue
            if now - self.last_seen.get(peer, now) > self.timeout:
                self.suspected.add(peer)
                self.obj.runtime.trace.record(
                    now, "detector.suspect", self.obj.name, peer=peer
                )
                if self.on_suspect is not None:
                    self.on_suspect(peer)
        self.obj.runtime.sim.schedule(
            self.interval, self._check, label=f"hbcheck:{self.obj.name}"
        )
