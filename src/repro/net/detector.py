"""Heartbeat-based failure detection.

The paper's fault model includes node crashes (Section 2) but its
algorithm assumes every participant stays reachable; a crashed peer would
stall resolution forever (the resolver waits for its ACK).  The
crash-tolerant variant (:mod:`repro.core.crash_tolerant`) closes that gap
using this detector: every member periodically heartbeats the group, and
a member whose heartbeats stop for ``timeout`` is *suspected*.

This is an eventually-perfect-style detector under the simulator's fault
model: crashed endpoints never heartbeat again (no false recoveries), but
slow networks can cause false suspicion — consumers must tolerate
messages from suspected peers arriving late, which the variant does.

Suspicion can additionally be wired to the group membership service
(Section 4.5: participants "could be treated as members of a closed
group"): pass ``membership_group`` and every suspected member is removed
from that group's view, so view changes track the detector's alive set.
Suspected peers also stop receiving our heartbeats — they have left the
view, and under the crash-only fault model they will never answer again.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.net.message import Message
from repro.objects.base import DistributedObject

KIND_HEARTBEAT = "HEARTBEAT"


class Heartbeater:
    """Emits and monitors heartbeats for one object within a peer group."""

    def __init__(
        self,
        obj: DistributedObject,
        peers: Sequence[str],
        interval: float = 2.0,
        timeout: float = 7.0,
        on_suspect: Callable[[str], None] | None = None,
        membership_group: str | None = None,
    ) -> None:
        if timeout <= interval:
            raise ValueError(
                f"timeout ({timeout}) must exceed the interval ({interval})"
            )
        self.obj = obj
        self.peers = [p for p in peers if p != obj.name]
        self.interval = interval
        self.timeout = timeout
        self.on_suspect = on_suspect
        self.membership_group = membership_group
        self.last_seen: dict[str, float] = {}
        self.suspected: set[str] = set()
        self._running = False
        # Each start() bumps the generation; beat/check chains carry the
        # generation they were started under and die when it goes stale.
        # Without this, stop() followed by start() before the old callbacks
        # fire would leave two live chains (doubled heartbeat traffic and
        # check frequency).
        self._generation = 0
        obj.on_kind(KIND_HEARTBEAT, self._on_heartbeat)

    def start(self) -> None:
        """Begin heartbeating and monitoring (idempotent)."""
        if self._running:
            return
        self._running = True
        self._generation += 1
        now = self.obj.sim_now
        for peer in self.peers:
            self.last_seen[peer] = now
        self._beat(self._generation)
        self._check(self._generation)

    def stop(self) -> None:
        self._running = False

    def restart(self) -> None:
        """Fresh start after this object's *own* node restarts.

        The crash killed the beat/check chains (they die on
        ``obj.crashed``) but left ``_running`` set, so a plain
        :meth:`start` would no-op.  Force a new generation and forget
        pre-crash suspicions — a restarted node re-learns who is alive
        rather than trusting verdicts from its previous life.
        """
        self.stop()
        self.suspected.clear()
        self.start()

    def rejoin(self, peer: str) -> None:
        """Welcome a restarted peer back: clear its suspicion and re-add
        it to the membership view.  No-op for an unsuspected peer (beyond
        refreshing ``last_seen`` so the rejoin itself counts as life)."""
        self.last_seen[peer] = self.obj.sim_now
        if peer not in self.suspected:
            return
        self.suspected.discard(peer)
        self.obj.runtime.trace.record(
            self.obj.sim_now, "detector.rejoin", self.obj.name, peer=peer
        )
        if self.membership_group is not None:
            membership = self.obj.runtime.membership
            if self.membership_group in membership.groups():
                membership.join(self.membership_group, peer)

    def is_suspected(self, name: str) -> bool:
        return name in self.suspected

    def alive_peers(self) -> list[str]:
        return [p for p in self.peers if p not in self.suspected]

    # -- internals ------------------------------------------------------------

    def _stale(self, generation: int) -> bool:
        return (
            not self._running
            or generation != self._generation
            or self.obj.crashed
        )

    def _beat(self, generation: int) -> None:
        if self._stale(generation):
            return
        for peer in self.peers:
            if peer not in self.suspected:
                self.obj.send(peer, KIND_HEARTBEAT, None)
        self.obj.runtime.sim.schedule(
            self.interval,
            lambda: self._beat(generation),
            label=f"hb:{self.obj.name}",
        )

    def _on_heartbeat(self, message: Message) -> None:
        self.last_seen[message.src] = self.obj.sim_now
        if message.src in self.suspected:
            # Late heartbeat from a suspected peer: with crash-only faults
            # this cannot happen, but under message delays it can — we keep
            # the suspicion (decisions already made must stay stable).
            self.obj.runtime.trace.record(
                self.obj.sim_now, "detector.late_heartbeat", self.obj.name,
                peer=message.src,
            )

    def _check(self, generation: int) -> None:
        if self._stale(generation):
            return
        now = self.obj.sim_now
        for peer in self.peers:
            if peer in self.suspected:
                continue
            if now - self.last_seen.get(peer, now) > self.timeout:
                self._suspect(peer, now)
        self.obj.runtime.sim.schedule(
            self.interval,
            lambda: self._check(generation),
            label=f"hbcheck:{self.obj.name}",
        )

    def _suspect(self, peer: str, now: float) -> None:
        self.suspected.add(peer)
        self.obj.runtime.trace.record(
            now, "detector.suspect", self.obj.name, peer=peer
        )
        if self.membership_group is not None:
            membership = self.obj.runtime.membership
            if self.membership_group in membership.groups():
                membership.leave(self.membership_group, peer)
        if self.on_suspect is not None:
            self.on_suspect(peer)
