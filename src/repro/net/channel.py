"""Per-pair FIFO channels.

The resolution algorithm (paper Section 4.2) assumes "FIFO message
sending/receiving between objects"; its correctness argument leans on this
(e.g. a ``HaveNested`` always arrives before the sender's later
``NestedCompleted``).  A :class:`Channel` enforces FIFO for one ordered
endpoint pair by never letting a later message be delivered before an
earlier one, whatever the sampled latencies.
"""

from __future__ import annotations

import random

from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message


class Channel:
    """Unidirectional FIFO link between two endpoint names."""

    __slots__ = ("src", "dst", "latency", "_rng", "_last_delivery", "sent", "_fixed")

    def __init__(
        self,
        src: str,
        dst: str,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self._rng = rng if rng is not None else random.Random(0)
        self._last_delivery = 0.0
        self.sent = 0
        # Constant-latency channels (the default, and every count sweep)
        # skip the sample() dispatch per message.
        self._fixed = (
            self.latency.delay if isinstance(self.latency, ConstantLatency) else None
        )

    def stamp(self, message: Message, now: float) -> float:
        """Assign send/deliver times to ``message`` and return the latter.

        FIFO is enforced by clamping the delivery time to be no earlier than
        the previous message's delivery on this channel.
        """
        fixed = self._fixed
        delay = fixed if fixed is not None else self.latency.sample(self._rng)
        deliver_at = now + delay
        last = self._last_delivery
        if deliver_at < last:
            deliver_at = last
        self._last_delivery = deliver_at
        message.send_time = now
        message.deliver_time = deliver_at
        self.sent += 1
        return deliver_at
