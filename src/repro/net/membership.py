"""Group membership service.

Section 4.5 of the paper suggests implementing the resolution protocol over
group communication with a membership service: "participating objects in a
CA action could be treated as members of a closed group".  This module
provides that service: named closed groups with versioned views.

View changes can be observed: :meth:`GroupMembership.subscribe` registers
a callback invoked with every new :class:`GroupView` of a group.  The
failure detector (:class:`repro.net.detector.Heartbeater`) uses the
mutation side of this contract — suspected members are removed from the
view — so protocol layers can watch one authoritative alive set instead
of polling every peer's detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class GroupView:
    """An immutable snapshot of a group's membership.

    Attributes:
        group: group name.
        version: monotonically increasing view number.
        members: sorted tuple of member endpoint names.
    """

    group: str
    version: int
    members: tuple[str, ...]

    def __contains__(self, name: str) -> bool:
        return name in self.members

    def others(self, name: str) -> tuple[str, ...]:
        """All members except ``name`` (used for 'all O_j in G_A' sends)."""
        return tuple(member for member in self.members if member != name)


#: Callback invoked with every new view of a subscribed group.
ViewListener = Callable[[GroupView], None]


class GroupMembership:
    """Registry of closed groups with view-change tracking."""

    def __init__(self) -> None:
        self._views: dict[str, GroupView] = {}
        self._listeners: dict[str, list[ViewListener]] = {}

    def create(self, group: str, members: list[str]) -> GroupView:
        if group in self._views:
            raise ValueError(f"group already exists: {group}")
        view = GroupView(group, 1, tuple(sorted(members)))
        self._views[group] = view
        return view

    def view(self, group: str) -> GroupView:
        try:
            return self._views[group]
        except KeyError:
            raise KeyError(f"no such group: {group}") from None

    def subscribe(self, group: str, listener: ViewListener) -> None:
        """Invoke ``listener`` with every subsequent view of ``group``."""
        self._listeners.setdefault(group, []).append(listener)

    def _install(self, group: str, view: GroupView) -> GroupView:
        self._views[group] = view
        for listener in self._listeners.get(group, ()):
            listener(view)
        return view

    def join(self, group: str, member: str) -> GroupView:
        old = self.view(group)
        if member in old.members:
            return old
        new = GroupView(group, old.version + 1, tuple(sorted((*old.members, member))))
        return self._install(group, new)

    def leave(self, group: str, member: str) -> GroupView:
        old = self.view(group)
        if member not in old.members:
            return old
        remaining = tuple(m for m in old.members if m != member)
        new = GroupView(group, old.version + 1, remaining)
        return self._install(group, new)

    def dissolve(self, group: str) -> None:
        self._views.pop(group, None)
        self._listeners.pop(group, None)

    def groups(self) -> list[str]:
        return sorted(self._views)
