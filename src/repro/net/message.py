"""Message envelopes.

A :class:`Message` is what travels between nodes.  The ``kind`` field is the
unit of the paper's complexity analysis: the resolution algorithm's message
kinds (``EXCEPTION``, ``HAVE_NESTED``, ``NESTED_COMPLETED``, ``ACK``,
``COMMIT``) are counted separately from application and synchronization
traffic, so benchmark counts match Section 4.4 exactly.

``Message`` is a hand-rolled ``__slots__`` class, not a dataclass: one is
allocated per send, which makes its ``__init__`` one of the three hottest
allocation sites in a sweep (with the heap entry and the delivery event).
A plain slotted class with positional defaults costs roughly half of what
the generated dataclass ``__init__`` (with its ``default_factory`` call)
did, and drops the per-instance ``__dict__`` entirely.
"""

from __future__ import annotations

import itertools
from typing import Any

_msg_ids = itertools.count(1)


def reset_msg_ids() -> None:
    """Restart message-id allocation at 1.

    Ids only need to be unique *within* a run (they key causal span
    links and trace entries).  The explorer resets them before every
    controlled run so replaying a schedule string reproduces the trace
    bit-for-bit — otherwise the process-global counter leaks prior runs'
    history into ``msg.send id=...`` entries and breaks trace-hash
    comparison across replays and pool workers.
    """
    global _msg_ids
    _msg_ids = itertools.count(1)


class Message:
    """An envelope in flight between two named endpoints.

    Attributes:
        src: sender endpoint name (an object name, not a node id — routing
            to nodes is the network's business).
        dst: recipient endpoint name.
        kind: message kind used for counting and dispatch.
        payload: kind-specific body (a protocol dataclass or dict).
        msg_id: unique id assigned at creation.
        send_time: virtual time the message was handed to the network.
        deliver_time: virtual time of delivery (set by the channel).
        corrupted: set by fault injection; receivers may detect this and
            raise a local exception, modelling transient channel errors.
        dropped: set by fault injection when the message will never be
            delivered; reliable layers inspect this to retransmit.
    """

    __slots__ = (
        "src", "dst", "kind", "payload", "msg_id",
        "send_time", "deliver_time", "corrupted", "dropped",
    )

    def __init__(
        self,
        src: str = "",
        dst: str = "",
        kind: str = "",
        payload: Any = None,
        msg_id: int | None = None,
        send_time: float = 0.0,
        deliver_time: float = 0.0,
        corrupted: bool = False,
        dropped: bool = False,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.msg_id = next(_msg_ids) if msg_id is None else msg_id
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.corrupted = corrupted
        self.dropped = dropped

    # Slots classes pickle via __reduce_ex__/__getstate__; spelling the
    # state out keeps the TCP transport's frames stable and compact.
    def __getstate__(self) -> tuple:
        return (
            self.src, self.dst, self.kind, self.payload, self.msg_id,
            self.send_time, self.deliver_time, self.corrupted, self.dropped,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.src, self.dst, self.kind, self.payload, self.msg_id,
            self.send_time, self.deliver_time, self.corrupted, self.dropped,
        ) = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, msg_id={self.msg_id})"
        )

    def __str__(self) -> str:
        flag = " CORRUPT" if self.corrupted else ""
        return (
            f"Message#{self.msg_id} {self.kind} {self.src}->{self.dst}"
            f" @{self.send_time:.3f}->{self.deliver_time:.3f}{flag}"
        )
