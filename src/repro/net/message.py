"""Message envelopes.

A :class:`Message` is what travels between nodes.  The ``kind`` field is the
unit of the paper's complexity analysis: the resolution algorithm's message
kinds (``EXCEPTION``, ``HAVE_NESTED``, ``NESTED_COMPLETED``, ``ACK``,
``COMMIT``) are counted separately from application and synchronization
traffic, so benchmark counts match Section 4.4 exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_ids = itertools.count(1)


def reset_msg_ids() -> None:
    """Restart message-id allocation at 1.

    Ids only need to be unique *within* a run (they key causal span
    links and trace entries).  The explorer resets them before every
    controlled run so replaying a schedule string reproduces the trace
    bit-for-bit — otherwise the process-global counter leaks prior runs'
    history into ``msg.send id=...`` entries and breaks trace-hash
    comparison across replays and pool workers.
    """
    global _msg_ids
    _msg_ids = itertools.count(1)


@dataclass
class Message:
    """An envelope in flight between two named endpoints.

    Attributes:
        src: sender endpoint name (an object name, not a node id — routing
            to nodes is the network's business).
        dst: recipient endpoint name.
        kind: message kind used for counting and dispatch.
        payload: kind-specific body (a protocol dataclass or dict).
        msg_id: unique id assigned at creation.
        send_time: virtual time the message was handed to the network.
        deliver_time: virtual time of delivery (set by the channel).
        corrupted: set by fault injection; receivers may detect this and
            raise a local exception, modelling transient channel errors.
        dropped: set by fault injection when the message will never be
            delivered; reliable layers inspect this to retransmit.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    send_time: float = 0.0
    deliver_time: float = 0.0
    corrupted: bool = False
    dropped: bool = False

    def __str__(self) -> str:
        flag = " CORRUPT" if self.corrupted else ""
        return (
            f"Message#{self.msg_id} {self.kind} {self.src}->{self.dst}"
            f" @{self.send_time:.3f}->{self.deliver_time:.3f}{flag}"
        )
