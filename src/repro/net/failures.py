"""Fault injection.

The paper's fault model (Section 2): hardware faults are node or network
crashes and transient errors, software faults are design faults; fail-stop
is *not* assumed — erroneous information may spread through channels.  The
injector models:

* message drop (lossy channel),
* message corruption (delivered but flagged; receivers detect and raise),
* node crash windows (a crashed endpoint neither sends nor receives),
* network partitions (sets of endpoints mutually unreachable for a window).

All decisions are drawn from named RNG streams, so failure schedules are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CrashWindow:
    """Endpoint ``name`` is crashed during ``[start, end)``."""

    name: str
    start: float
    end: float = float("inf")

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class PartitionWindow:
    """During ``[start, end)`` endpoints in ``side_a`` cannot talk to
    endpoints in ``side_b`` (and vice versa)."""

    side_a: frozenset[str]
    side_b: frozenset[str]
    start: float
    end: float = float("inf")

    def separates(self, x: str, y: str, time: float) -> bool:
        if not (self.start <= time < self.end):
            return False
        return (x in self.side_a and y in self.side_b) or (
            x in self.side_b and y in self.side_a
        )


def split_partition(
    members: "list[str] | tuple[str, ...]", start: float, end: float
) -> PartitionWindow:
    """A :class:`PartitionWindow` splitting ``members`` into two halves.

    The split is deterministic (sorted order, first half vs rest), which
    keeps fault campaigns reproducible from their seeds alone.
    """
    ordered = sorted(members)
    if len(ordered) < 2:
        raise ValueError("a partition needs at least two members")
    half = len(ordered) // 2
    return PartitionWindow(
        frozenset(ordered[:half]), frozenset(ordered[half:]), start, end
    )


@dataclass
class FailurePlan:
    """Declarative description of the faults to inject in a run."""

    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    crashes: list[CrashWindow] = field(default_factory=list)
    partitions: list[PartitionWindow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(f"bad drop probability: {self.drop_probability}")
        if not 0.0 <= self.corrupt_probability <= 1.0:
            raise ValueError(f"bad corrupt probability: {self.corrupt_probability}")


class FailureInjector:
    """Applies a :class:`FailurePlan` to messages as the network sends them."""

    DELIVER = "deliver"
    DROP = "drop"
    CORRUPT = "corrupt"

    def __init__(self, plan: FailurePlan | None = None, rng: random.Random | None = None):
        self.plan = plan if plan is not None else FailurePlan()
        self._rng = rng if rng is not None else random.Random(0)
        self.dropped = 0
        self.corrupted = 0

    def crashed(self, name: str, time: float) -> bool:
        """True if endpoint ``name`` is inside a crash window at ``time``."""
        crashes = self.plan.crashes
        if not crashes:
            return False
        return any(w.name == name and w.covers(time) for w in crashes)

    def decide(self, src: str, dst: str, time: float) -> str:
        """Fate of a message sent ``src → dst`` at ``time``."""
        plan = self.plan
        if not (
            plan.crashes
            or plan.partitions
            or plan.drop_probability
            or plan.corrupt_probability
        ):
            # Fault-free plan: the common case in count sweeps.  No RNG is
            # drawn on this path in the slow branch either (probability
            # checks short-circuit before sampling), so skipping it keeps
            # all random streams bit-identical.
            return self.DELIVER
        if self.crashed(src, time) or self.crashed(dst, time):
            self.dropped += 1
            return self.DROP
        if any(p.separates(src, dst, time) for p in self.plan.partitions):
            self.dropped += 1
            return self.DROP
        if self.plan.drop_probability and self._rng.random() < self.plan.drop_probability:
            self.dropped += 1
            return self.DROP
        if (
            self.plan.corrupt_probability
            and self._rng.random() < self.plan.corrupt_probability
        ):
            self.corrupted += 1
            return self.CORRUPT
        return self.DELIVER
