"""ASCII message-sequence charts from simulation traces.

Renders the classic distributed-systems lane diagram: one column per
object, one row per traced event, with sends, receives, raises, aborts,
handler runs and commits annotated in the acting object's lane.  Used by
examples and by humans debugging protocol scenarios; the worked-example
integration tests also assert on the paper-relevant rows.

Example output (Example 1)::

        time │ O1              │ O2              │ O3
      10.000 │ raise E1        │                 │
      10.000 │ EXCEPTION →O2   │                 │
      ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.simkernel.trace import TraceEntry, TraceRecorder

#: Categories rendered by default, in the lane of ``entry.subject``.
DEFAULT_CATEGORIES = (
    "raise",
    "msg.send",
    "msg.recv",
    "msg.buffered",
    "pending.cleanup",
    "abort.start",
    "abort.done",
    "resolution.commit",
    "handler.start",
    "handler.done",
    "action.enter",
    "action.exit",
)


@dataclass(frozen=True)
class ChartRow:
    """One rendered row: a time and a per-lane annotation."""

    time: float
    lane: str
    text: str


def _annotation(entry: TraceEntry) -> Optional[str]:
    details = entry.details
    category = entry.category
    if category == "raise":
        return f"raise {details['exception']}"
    if category == "msg.send":
        return f"{details['kind']} →{details['dst']}"
    if category == "msg.recv":
        return f"◀ {details['kind']} from {details['src']}"
    if category == "msg.buffered":
        return f"buffer {details['kind']} ({details['action']})"
    if category == "pending.cleanup":
        return f"clean {details['dropped']} stale msg(s)"
    if category == "abort.start":
        return f"aborting {details['action']}"
    if category == "abort.done":
        signal = details.get("signal")
        extra = f", signals {signal}" if signal else ""
        return f"aborted {details['action']}{extra}"
    if category == "resolution.commit":
        return f"RESOLVE → {details['exception']}"
    if category == "handler.start":
        return f"handler[{details['exception']}] starts"
    if category == "handler.done":
        return f"handler done ({details['outcome']})"
    if category == "action.enter":
        return f"enter {details['action']}"
    if category == "action.exit":
        return f"exit {details['action']} ({details['outcome']})"
    return None


def chart_rows(
    trace: TraceRecorder,
    lanes: Sequence[str],
    categories: Iterable[str] = DEFAULT_CATEGORIES,
    kinds: Optional[set[str]] = None,
) -> list[ChartRow]:
    """Extract renderable rows for the given lanes.

    Args:
        trace: the recorded trace.
        lanes: object names, left to right.
        categories: trace categories to include.
        kinds: when given, message events are filtered to these kinds.
    """
    wanted = set(categories)
    rows: list[ChartRow] = []
    for entry in trace:
        if entry.category not in wanted or entry.subject not in lanes:
            continue
        if kinds is not None and entry.category.startswith("msg"):
            if entry.details.get("kind") not in kinds:
                continue
        text = _annotation(entry)
        if text is not None:
            rows.append(ChartRow(entry.time, entry.subject, text))
    return rows


def _render_rows(
    rows: Sequence[ChartRow],
    lanes: Sequence[str],
    lane_width: int,
    max_rows: int,
) -> list[str]:
    """The shared lane-diagram renderer behind both chart flavours."""
    if lane_width <= 0:
        lane_width = 12
        for row in rows:
            lane_width = max(lane_width, len(row.text) + 1)
        lane_width = min(lane_width, 34)
    header = f"{'time':>10} │ " + " │ ".join(
        lane.ljust(lane_width) for lane in lanes
    )
    divider = "-" * len(header)
    lines = [header, divider]
    elided = 0
    for row in rows:
        if len(lines) - 2 >= max_rows:
            elided += 1
            continue
        cells = []
        for lane in lanes:
            text = row.text if lane == row.lane else ""
            cells.append(text[:lane_width].ljust(lane_width))
        lines.append(f"{row.time:>10.3f} │ " + " │ ".join(cells))
    if elided:
        lines.append(f"... {elided} further events elided ...")
    return lines


def render_sequence_chart(
    trace: TraceRecorder,
    lanes: Sequence[str],
    categories: Iterable[str] = DEFAULT_CATEGORIES,
    kinds: Optional[set[str]] = None,
    lane_width: int = 0,
    max_rows: int = 200,
) -> str:
    """Render the lane diagram as a string.

    ``lane_width`` of 0 auto-sizes to the longest annotation per lane.
    Rows beyond ``max_rows`` are elided with a summary line.
    """
    rows = chart_rows(trace, lanes, categories, kinds)
    return "\n".join(_render_rows(rows, lanes, lane_width, max_rows))


def span_chart_rows(spans, lanes: Sequence[str]) -> list[ChartRow]:
    """Lane rows from a causal span forest (see :mod:`repro.obs.spans`).

    Each span contributes a ``▶ name`` row at its start and a ``■ name
    (outcome)`` row at its end; instantaneous event spans render as a
    single ``● name`` row.  Rows are indented by forest depth, so nested
    abortion chains (action span → resolution span → abort spans) read as
    an indented ladder inside their parent's lifetime.
    """
    lane_set = set(lanes)

    def depth_of(span) -> int:
        depth = 0
        current = span
        while current.parent_id is not None:
            parent = spans.get(current.parent_id)
            if parent is None:
                break
            depth += 1
            current = parent
        return depth

    keyed: list[tuple[float, int, int, ChartRow]] = []
    for span in spans:
        if span.subject not in lane_set:
            continue
        indent = "· " * depth_of(span)
        if span.is_event:
            keyed.append((
                span.start, span.span_id, 0,
                ChartRow(span.start, span.subject, f"{indent}● {span.name}"),
            ))
            continue
        keyed.append((
            span.start, span.span_id, 0,
            ChartRow(span.start, span.subject, f"{indent}▶ {span.name}"),
        ))
        if span.closed:
            outcome = span.attrs.get("outcome")
            suffix = f" ({outcome})" if outcome else ""
            keyed.append((
                span.end, span.span_id, 1,
                ChartRow(span.end, span.subject, f"{indent}■ {span.name}{suffix}"),
            ))
    # Same-instant rows follow span creation order (then begin-before-end
    # for a single span), so a dwell that closes as its successor opens
    # renders closed-then-opened.
    keyed.sort(key=lambda item: item[:3])
    return [row for *_, row in keyed]


def render_span_chart(
    spans,
    lanes: Sequence[str],
    lane_width: int = 0,
    max_rows: int = 200,
) -> str:
    """Render a span forest as a lane diagram.

    The span-level companion to :func:`render_sequence_chart`: instead of
    one row per message, it shows each participant's span lifecycle —
    action entry, resolution start, N→X/S→R state dwells, abortion chains,
    raise/commit/handler instants.  Spans still open at the end of the
    run (crashed or stalled members) are listed in a footer, since they
    have no end row to render.
    """
    rows = span_chart_rows(spans, lanes)
    lines = _render_rows(rows, lanes, lane_width, max_rows)
    lane_set = set(lanes)
    still_open = [
        span for span in spans.open_spans() if span.subject in lane_set
    ]
    for span in still_open:
        lines.append(
            f"... open: {span.subject} {span.name} "
            f"[{span.start:.3f} → …] ..."
        )
    return "\n".join(lines)
