"""ASCII message-sequence charts from simulation traces.

Renders the classic distributed-systems lane diagram: one column per
object, one row per traced event, with sends, receives, raises, aborts,
handler runs and commits annotated in the acting object's lane.  Used by
examples and by humans debugging protocol scenarios; the worked-example
integration tests also assert on the paper-relevant rows.

Example output (Example 1)::

        time │ O1              │ O2              │ O3
      10.000 │ raise E1        │                 │
      10.000 │ EXCEPTION →O2   │                 │
      ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.simkernel.trace import TraceEntry, TraceRecorder

#: Categories rendered by default, in the lane of ``entry.subject``.
DEFAULT_CATEGORIES = (
    "raise",
    "msg.send",
    "msg.recv",
    "msg.buffered",
    "pending.cleanup",
    "abort.start",
    "abort.done",
    "resolution.commit",
    "handler.start",
    "handler.done",
    "action.enter",
    "action.exit",
)


@dataclass(frozen=True)
class ChartRow:
    """One rendered row: a time and a per-lane annotation."""

    time: float
    lane: str
    text: str


def _annotation(entry: TraceEntry) -> Optional[str]:
    details = entry.details
    category = entry.category
    if category == "raise":
        return f"raise {details['exception']}"
    if category == "msg.send":
        return f"{details['kind']} →{details['dst']}"
    if category == "msg.recv":
        return f"◀ {details['kind']} from {details['src']}"
    if category == "msg.buffered":
        return f"buffer {details['kind']} ({details['action']})"
    if category == "pending.cleanup":
        return f"clean {details['dropped']} stale msg(s)"
    if category == "abort.start":
        return f"aborting {details['action']}"
    if category == "abort.done":
        signal = details.get("signal")
        extra = f", signals {signal}" if signal else ""
        return f"aborted {details['action']}{extra}"
    if category == "resolution.commit":
        return f"RESOLVE → {details['exception']}"
    if category == "handler.start":
        return f"handler[{details['exception']}] starts"
    if category == "handler.done":
        return f"handler done ({details['outcome']})"
    if category == "action.enter":
        return f"enter {details['action']}"
    if category == "action.exit":
        return f"exit {details['action']} ({details['outcome']})"
    return None


def chart_rows(
    trace: TraceRecorder,
    lanes: Sequence[str],
    categories: Iterable[str] = DEFAULT_CATEGORIES,
    kinds: Optional[set[str]] = None,
) -> list[ChartRow]:
    """Extract renderable rows for the given lanes.

    Args:
        trace: the recorded trace.
        lanes: object names, left to right.
        categories: trace categories to include.
        kinds: when given, message events are filtered to these kinds.
    """
    wanted = set(categories)
    rows: list[ChartRow] = []
    for entry in trace:
        if entry.category not in wanted or entry.subject not in lanes:
            continue
        if kinds is not None and entry.category.startswith("msg"):
            if entry.details.get("kind") not in kinds:
                continue
        text = _annotation(entry)
        if text is not None:
            rows.append(ChartRow(entry.time, entry.subject, text))
    return rows


def render_sequence_chart(
    trace: TraceRecorder,
    lanes: Sequence[str],
    categories: Iterable[str] = DEFAULT_CATEGORIES,
    kinds: Optional[set[str]] = None,
    lane_width: int = 0,
    max_rows: int = 200,
) -> str:
    """Render the lane diagram as a string.

    ``lane_width`` of 0 auto-sizes to the longest annotation per lane.
    Rows beyond ``max_rows`` are elided with a summary line.
    """
    rows = chart_rows(trace, lanes, categories, kinds)
    if lane_width <= 0:
        lane_width = 12
        for row in rows:
            lane_width = max(lane_width, len(row.text) + 1)
        lane_width = min(lane_width, 34)
    header = f"{'time':>10} │ " + " │ ".join(
        lane.ljust(lane_width) for lane in lanes
    )
    divider = "-" * len(header)
    lines = [header, divider]
    elided = 0
    for row in rows:
        if len(lines) - 2 >= max_rows:
            elided += 1
            continue
        cells = []
        for lane in lanes:
            text = row.text if lane == row.lane else ""
            cells.append(text[:lane_width].ljust(lane_width))
        lines.append(f"{row.time:>10.3f} │ " + " │ ".join(cells))
    if elided:
        lines.append(f"... {elided} further events elided ...")
    return "\n".join(lines)
