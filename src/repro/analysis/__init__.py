"""Analytical model of Section 4.4 and curve-fitting helpers.

:mod:`repro.analysis.formulas` encodes the paper's closed-form message
counts; :mod:`repro.analysis.fitting` estimates empirical growth orders
from measured sweeps (log-log regression), used to verify the O(N²) vs
O(N³) comparison without relying on absolute counts.
"""

from repro.analysis.fitting import fit_power_law, growth_order
from repro.analysis.sequence_chart import (
    chart_rows,
    render_sequence_chart,
    render_span_chart,
    span_chart_rows,
)
from repro.analysis.formulas import (
    case1_messages,
    case2_messages,
    case3_messages,
    general_messages,
    multicast_operations,
    resolver_group_messages,
)

__all__ = [
    "case1_messages",
    "case2_messages",
    "case3_messages",
    "chart_rows",
    "fit_power_law",
    "general_messages",
    "growth_order",
    "multicast_operations",
    "render_sequence_chart",
    "render_span_chart",
    "span_chart_rows",
    "resolver_group_messages",
]
