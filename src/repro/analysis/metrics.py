"""Trace-derived metrics.

Benchmarks and tests repeatedly need the same quantities out of a run's
trace: when resolution started, when it committed, when every handler had
run, how traffic split across participants and kinds.  This module
extracts them once, with a typed result object, instead of ad-hoc trace
grubbing at every call site.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.simkernel.trace import TraceRecorder


@dataclass(frozen=True)
class ResolutionTimeline:
    """Key instants of one action's resolution, in virtual time.

    ``None`` fields mean the phase never happened (e.g. no commit when no
    exception was raised).
    """

    action: str
    first_raise: Optional[float]
    first_commit: Optional[float]
    last_handler_start: Optional[float]
    last_handler_done: Optional[float]

    @property
    def detection_to_commit(self) -> Optional[float]:
        """The resolution latency the paper's Figure 1 discussion cares
        about: raise → commit."""
        if self.first_raise is None or self.first_commit is None:
            return None
        return self.first_commit - self.first_raise

    @property
    def detection_to_recovery(self) -> Optional[float]:
        """Raise → every participant finished its handler."""
        if self.first_raise is None or self.last_handler_done is None:
            return None
        return self.last_handler_done - self.first_raise


def resolution_timeline(trace: TraceRecorder, action: str) -> ResolutionTimeline:
    """Extract the resolution timeline of ``action`` from a trace."""
    raises = [
        e.time for e in trace.by_category("raise")
        if e.details.get("action") == action
    ]
    commits = [
        e.time for e in trace.by_category("resolution.commit")
        if e.details.get("action") == action
    ]
    starts = [
        e.time for e in trace.by_category("handler.start")
        if e.details.get("action") == action
    ]
    dones = [
        e.time for e in trace.by_category("handler.done")
        if e.details.get("action") == action
    ]
    return ResolutionTimeline(
        action=action,
        first_raise=min(raises) if raises else None,
        first_commit=min(commits) if commits else None,
        last_handler_start=max(starts) if starts else None,
        last_handler_done=max(dones) if dones else None,
    )


@dataclass(frozen=True)
class TrafficBreakdown:
    """Message-volume split of one run."""

    by_kind: dict[str, int]
    by_sender: dict[str, int]
    by_pair: dict[tuple[str, str], int]

    def total(self) -> int:
        return sum(self.by_kind.values())

    def busiest_sender(self) -> Optional[str]:
        if not self.by_sender:
            return None
        return max(self.by_sender, key=lambda s: (self.by_sender[s], s))


def traffic_breakdown(
    trace: TraceRecorder,
    kinds: Optional[set[str]] = None,
    action: Optional[str] = None,
) -> TrafficBreakdown:
    """Summarize ``msg.send`` entries, optionally filtered."""
    by_kind: Counter = Counter()
    by_sender: Counter = Counter()
    by_pair: Counter = Counter()
    for entry in trace.by_category("msg.send"):
        kind = entry.details.get("kind")
        if kinds is not None and kind not in kinds:
            continue
        if action is not None and entry.details.get("action") != action:
            continue
        sender = entry.subject
        dst = entry.details.get("dst")
        by_kind[kind] += 1
        by_sender[sender] += 1
        by_pair[(sender, dst)] += 1
    return TrafficBreakdown(dict(by_kind), dict(by_sender), dict(by_pair))


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of a sample of latencies."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @classmethod
    def of(cls, samples: list[float]) -> "LatencySummary":
        if not samples:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(samples)

        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
            return ordered[index]

        return cls(
            count=len(ordered),
            mean=statistics.mean(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=percentile(0.50),
            p95=percentile(0.95),
        )


def delivery_latencies(
    trace: TraceRecorder, kinds: Optional[set[str]] = None
) -> list[float]:
    """Per-message send→receive latencies, matched by message id."""
    sends: dict[int, float] = {}
    for entry in trace.by_category("msg.send"):
        if kinds is None or entry.details.get("kind") in kinds:
            sends[entry.details["id"]] = entry.time
    latencies = []
    for entry in trace.by_category("msg.recv"):
        sent = sends.get(entry.details.get("id"))
        if sent is not None:
            latencies.append(entry.time - sent)
    return latencies
