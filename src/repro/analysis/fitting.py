"""Power-law fitting for empirical complexity estimation.

A measured sweep ``(n, messages)`` is fit as ``messages ≈ c · n^k`` by
least squares in log-log space.  The exponent ``k`` is the empirical
growth order: ~2 for the new algorithm, ~3 for the CR baseline — the
Section 4.4 comparison in measurable form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """``y = coefficient * x ** exponent`` with an r² quality score."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(points: Sequence[tuple[float, float]]) -> PowerLawFit:
    """Least-squares fit in log-log space.

    Args:
        points: (x, y) pairs; both coordinates must be positive and at
            least two distinct x values are required.
    """
    cleaned = [(x, y) for x, y in points if x > 0 and y > 0]
    if len(cleaned) < 2 or len({x for x, _ in cleaned}) < 2:
        raise ValueError("need at least two points with distinct positive x")
    logs = [(math.log(x), math.log(y)) for x, y in cleaned]
    n = len(logs)
    mean_x = sum(lx for lx, _ in logs) / n
    mean_y = sum(ly for _, ly in logs) / n
    sxx = sum((lx - mean_x) ** 2 for lx, _ in logs)
    sxy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in logs)
    exponent = sxy / sxx
    intercept = mean_y - exponent * mean_x
    ss_tot = sum((ly - mean_y) ** 2 for _, ly in logs)
    ss_res = sum(
        (ly - (exponent * lx + intercept)) ** 2 for lx, ly in logs
    )
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=exponent, coefficient=math.exp(intercept), r_squared=r_squared
    )


def growth_order(points: Sequence[tuple[float, float]]) -> float:
    """Shorthand for the fitted exponent."""
    return fit_power_law(points).exponent
