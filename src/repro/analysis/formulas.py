"""The paper's closed-form message counts (Section 4.4).

Quoting the paper, for N participants of the outermost CA action:

1. "when only one exception is raised and there are no nested actions,
   then the number of messages is 3 × (N − 1)";
2. "when one exception is raised and all other objects have nested
   actions, then the number of messages is 3N × (N − 1)";
3. "when all N objects have the exceptions raised simultaneously, then
   the number is (N − 1) × (2N + 1)";
4. generally, for P raisers and Q nested objects:
   "(N − 1) × (2P + 3Q + 1)".

These functions are the reference values the benchmark harness compares
simulated counts against.
"""

from __future__ import annotations


def _validate(n: int, p: int = 1, q: int = 0) -> None:
    if n < 1:
        raise ValueError(f"N must be positive: {n}")
    if not 0 <= p <= n:
        raise ValueError(f"P must be in [0, N]: p={p}, n={n}")
    if not 0 <= q <= n - p:
        raise ValueError(f"Q must be in [0, N-P]: q={q}, n={n}, p={p}")


def case1_messages(n: int) -> int:
    """One exception, no nested actions: ``3(N-1)``."""
    _validate(n)
    return 3 * (n - 1)


def case2_messages(n: int) -> int:
    """One exception, all other objects nested: ``3N(N-1)``."""
    _validate(n, p=1, q=n - 1)
    return 3 * n * (n - 1)


def case3_messages(n: int) -> int:
    """All N objects raise simultaneously: ``(N-1)(2N+1)``."""
    _validate(n, p=n, q=0)
    return (n - 1) * (2 * n + 1)


def general_messages(n: int, p: int, q: int) -> int:
    """``(N-1)(2P + 3Q + 1)``; zero when nothing is raised."""
    _validate(n, p, q)
    if p == 0:
        return 0
    return (n - 1) * (2 * p + 3 * q + 1)


def resolver_group_messages(n: int, p: int, q: int, k: int) -> int:
    """The k-resolver extension: ``(N-1)(2P + 3Q + k)`` with k ≤ P."""
    _validate(n, p, q)
    if k < 1:
        raise ValueError(f"k must be at least 1: {k}")
    if p == 0:
        return 0
    return (n - 1) * (2 * p + 3 * q + min(k, p))


def multicast_operations(n: int, p: int, q: int) -> int:
    """The Section 4.5 variant: ``N + Q + 1`` multicast operations."""
    _validate(n, p, q)
    if p == 0:
        return 0
    return n + q + 1


def consistency_checks() -> list[str]:
    """Cross-checks tying the named cases to the general formula.

    Returns an empty list when all identities hold (used by tests).
    """
    problems = []
    for n in range(1, 40):
        if general_messages(n, 1, 0) != case1_messages(n):
            problems.append(f"case1 mismatch at N={n}")
        if n >= 2 and general_messages(n, 1, n - 1) != case2_messages(n):
            problems.append(f"case2 mismatch at N={n}")
        if general_messages(n, n, 0) != case3_messages(n):
            problems.append(f"case3 mismatch at N={n}")
    return problems
