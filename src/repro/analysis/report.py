"""Self-contained experiment report generation.

``python -m repro report`` reruns the core quantitative experiments (the
exact-count checks plus the baseline/variant comparisons) without pytest
and renders one markdown report — the quickest way for a downstream user
to confirm the reproduction holds on their machine.

The pytest-benchmark harness under ``benchmarks/`` remains the canonical,
assertion-bearing version of each experiment; this module favours breadth
and readability over timing statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.fitting import fit_power_law
from repro.analysis.formulas import (
    case1_messages,
    case2_messages,
    case3_messages,
)


@dataclass
class ReportSection:
    title: str
    headers: list[str]
    rows: list[tuple]
    verdict: str
    notes: str = ""

    def render(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        lines.append("")
        lines.append(f"**Verdict: {self.verdict}**")
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        lines.append("")
        return "\n".join(lines)


def _exact_cases(sweep: list[int]) -> list[ReportSection]:
    from repro.workloads.generator import (
        all_nested_case,
        all_raise_case,
        single_exception_case,
    )

    sections = []
    cases: list[tuple[str, Callable, Callable]] = [
        ("E1 — one exception, no nesting: 3(N-1)",
         single_exception_case, case1_messages),
        ("E2 — one exception, all others nested: 3N(N-1)",
         all_nested_case, case2_messages),
        ("E3 — all N raise: (N-1)(2N+1)",
         all_raise_case, case3_messages),
    ]
    for title, scenario_fn, model_fn in cases:
        rows = []
        clean = True
        for n in sweep:
            measured = scenario_fn(n).run().resolution_message_total()
            model = model_fn(n)
            clean &= measured == model
            rows.append((n, model, measured, "OK" if measured == model else "X"))
        sections.append(
            ReportSection(
                title, ["N", "paper", "measured", ""], rows,
                "exact match" if clean else "MISMATCH",
            )
        )
    return sections


def _general_formula() -> ReportSection:
    from repro.workloads.sweeps import full_grid, sweep_general

    sweep = sweep_general(full_grid([4, 6, 8]))
    mismatches = sweep.mismatches()
    sample = [r for r in sweep.rows() if r[0] == 8][:6]
    return ReportSection(
        "E4 — general formula (N-1)(2P+3Q+1)",
        ["N", "P", "Q", "paper", "measured", ""],
        sample,
        f"{len(sweep.points)} grid points, {len(mismatches)} mismatches",
        notes="(sample rows shown; the verdict covers the full grid)",
    )


def _cr_comparison(sweep: list[int]) -> ReportSection:
    from repro.core.cr_baseline import run_cr_concurrent
    from repro.workloads.generator import all_raise_case

    rows = []
    cr_points, new_points = [], []
    for n in sweep:
        cr = run_cr_concurrent(n).total_messages()
        new = all_raise_case(n).run().resolution_message_total()
        cr_points.append((n, cr))
        new_points.append((n, new))
        rows.append((n, cr, new, f"{cr / new:.1f}x"))
    cr_fit = fit_power_law(cr_points)
    new_fit = fit_power_law(new_points)
    ok = cr_fit.exponent > 2.5 and 1.7 < new_fit.exponent < 2.3
    return ReportSection(
        "E5 — vs the Campbell-Randell baseline",
        ["N", "CR", "new", "ratio"],
        rows,
        f"CR ~ N^{cr_fit.exponent:.2f}, new ~ N^{new_fit.exponent:.2f} "
        f"(paper: O(N^3) vs O(N^2)) — "
        + ("shape holds" if ok else "SHAPE MISMATCH"),
    )


def _worked_examples() -> ReportSection:
    from repro.workloads.generator import example1_scenario, example2_scenario

    ex1 = example1_scenario().run()
    ex2 = example2_scenario().run()
    (c1,) = ex1.commit_entries("A1")
    (c2,) = ex2.commit_entries("A1")
    rows = [
        ("Example 1 total", 10, ex1.resolution_message_total()),
        ("Example 1 resolver", "O2", c1.subject),
        ("Example 2 A1 total", 36, sum(ex2.messages_for_action("A1").values())),
        ("Example 2 resolver", "O2", c2.subject),
        ("Example 2 raisers", "O1,O2", c2.details["raisers"]),
    ]
    ok = all(str(row[1]) == str(row[2]) for row in rows)
    return ReportSection(
        "E7/E8 — the worked examples",
        ["quantity", "paper", "measured"],
        rows,
        "exact match" if ok else "MISMATCH",
    )


def _variants(n: int = 8) -> ReportSection:
    from repro.core.centralized_variant import (
        expected_centralized_messages,
        run_centralized,
    )
    from repro.core.multicast_variant import (
        expected_multicast_operations,
        run_multicast_resolution,
    )
    from repro.core.resolver_group import expected_messages_with_resolver_group
    from repro.workloads.generator import general_case

    rows = []
    mc = run_multicast_resolution(n, 2, 2)
    rows.append(
        ("multicast ops (N+Q+1)", expected_multicast_operations(n, 2, 2),
         mc.multicast_operations())
    )
    cd = run_centralized(n, 2)
    rows.append(
        ("centralised msgs (3N-2+P)", expected_centralized_messages(n, 2),
         cd.total_messages())
    )
    rg = general_case(n, 2, 2, resolver_group_size=2).run()
    rows.append(
        ("k=2 resolvers ((N-1)(2P+3Q+2))",
         expected_messages_with_resolver_group(n, 2, 2, 2),
         rg.resolution_message_total())
    )
    ok = all(row[1] == row[2] for row in rows)
    return ReportSection(
        f"E12/E14/E18 — algorithm variants (N={n})",
        ["variant", "model", "measured"],
        rows,
        "exact match" if ok else "MISMATCH",
    )


def generate_report(sweep: list[int] | None = None) -> str:
    """Run the report experiments and return the markdown text."""
    sweep = sweep or [2, 4, 8, 16]
    sections: list[ReportSection] = []
    sections.extend(_exact_cases(sweep))
    sections.append(_general_formula())
    sections.append(_cr_comparison([4, 8, 16]))
    sections.append(_worked_examples())
    sections.append(_variants())
    verdicts = [s.verdict for s in sections]
    healthy = not any("MISMATCH" in v or v.endswith("X") for v in verdicts)
    header = [
        "# Reproduction report",
        "",
        "Romanovsky, Xu & Randell — *Exception Handling and Resolution in "
        "Distributed Object-Oriented Systems* (ICDCS 1996).",
        "",
        f"**Overall: {'all claims hold' if healthy else 'DISCREPANCIES FOUND'}**",
        "",
    ]
    return "\n".join(header) + "\n" + "\n".join(s.render() for s in sections)
