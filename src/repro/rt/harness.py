"""Sim-vs-real conformance kit: the backend gap as a correctness oracle.

A protocol whose outcome depends on which kernel ran it is broken — the
algorithm's guarantees (agreement, exactly-once, the Section 4.4 counts)
are *schedule-free* claims.  :class:`ProtocolHarness` turns that into a
test: execute the **same** campaign cell (same variant, shape, fault,
seed — :class:`~repro.workloads.campaigns.CampaignCell`, same observers,
same invariant oracles) on the deterministic simkernel and on the
wall-clock asyncio backend, reduce each run to an **oracle digest**, and
check the digests are equal.

The digest keeps exactly the protocol-level facts the paper makes claims
about and drops everything timing-dependent:

* oracle classification (``OK`` / ``STALLED-*`` / ``INVARIANT-VIOLATION``)
  and the violation list;
* who started which resolved handler (handler agreement, completeness);
* termination;
* for fault-free cells, the exact Section 4.4 message/operation count.

Fault cells keep their classification and agreement in the digest but not
the raw counts — under real timers the injector's RNG stream is consumed
in wall-clock arrival order, so drop patterns (and hence retry traffic)
legitimately differ between backends.

On divergence, :func:`export_conformance_traces` re-runs the cell on both
backends at FULL trace and dumps each side's causal span forest (Chrome
trace-event JSON + plain tree) for diffing — the same artifacts the fault
campaigns and the schedule explorer produce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.rt.backend import BACKENDS, backend as backend_scope
from repro.rt.kernel import DEFAULT_TIME_SCALE
from repro.workloads.campaigns import (
    OK,
    STALLED_EXPECTED,
    CampaignCell,
    classify_observation,
    observe_cell,
)

#: Default horizons (virtual time) per cell.  The crash-tolerant variant
#: heartbeats forever, so its runs never quiesce and always pay the full
#: horizon — on the asyncio backend that is real wall time, hence the
#: tighter bounds (fault-free ct resolves by ~t=30; crash cells need the
#: detector timeout plus a re-resolution round).  Every other variant
#: quiesces on its own; 400 matches the fault campaigns' RUN_UNTIL.
CT_HORIZON_FAULT_FREE = 80.0
CT_HORIZON_FAULT = 150.0
DEFAULT_HORIZON = 400.0


def cell_horizon(cell: CampaignCell) -> float:
    if cell.variant == "ct":
        return CT_HORIZON_FAULT_FREE if cell.fault == "none" else CT_HORIZON_FAULT
    return DEFAULT_HORIZON


def oracle_digest(cell: CampaignCell, obs, classification: str,
                  violations: tuple[str, ...]) -> dict:
    """The backend-independent summary two conforming runs must share."""
    digest = {
        "cell": cell.cell_id,
        "classification": classification,
        "violations": tuple(sorted(violations)),
        "finished": obs.finished,
        "handled": tuple(sorted(obs.handled.items())),
        "crashed": tuple(sorted(obs.crashed)),
    }
    if cell.fault == "none":
        # Fault-free runs must hit the paper's exact count on *every*
        # backend; fault cells' raw traffic is timing-dependent.
        digest["measured"] = obs.measured
        digest["expected"] = obs.expected
    return digest


@dataclass(frozen=True)
class BackendRun:
    """One cell executed on one backend, reduced for comparison."""

    backend: str
    digest: dict
    wall_seconds: float
    sim_duration: float

    @property
    def classification(self) -> str:
        return self.digest["classification"]


@dataclass(frozen=True)
class ConformanceCellResult:
    """One cell across all backends, plus the equality verdict."""

    cell: CampaignCell
    runs: tuple[BackendRun, ...]

    @property
    def match(self) -> bool:
        digests = [run.digest for run in self.runs]
        return all(d == digests[0] for d in digests[1:])

    @property
    def healthy(self) -> bool:
        """Every backend individually passed its oracles (stalls only
        where documented), *and* the backends agree."""
        acceptable = (OK, STALLED_EXPECTED)
        return self.match and all(
            run.classification in acceptable for run in self.runs
        )

    def divergent_keys(self) -> tuple[str, ...]:
        if self.match:
            return ()
        baseline = self.runs[0].digest
        keys = set()
        for run in self.runs[1:]:
            for key in baseline:
                if run.digest.get(key) != baseline[key]:
                    keys.add(key)
        return tuple(sorted(keys))

    def to_payload(self) -> dict:
        return {
            "cell": self.cell.cell_id,
            "match": self.match,
            "healthy": self.healthy,
            "divergent_keys": list(self.divergent_keys()),
            "runs": [
                {
                    "backend": run.backend,
                    "wall_seconds": run.wall_seconds,
                    "sim_duration": run.sim_duration,
                    "digest": {
                        k: list(v) if isinstance(v, tuple) else v
                        for k, v in run.digest.items()
                    },
                }
                for run in self.runs
            ],
        }


@dataclass
class ConformanceReport:
    """Aggregated conformance results, JSON-able for ``BENCH_rt.json``."""

    results: list[ConformanceCellResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.healthy for result in self.results)

    def failures(self) -> list[ConformanceCellResult]:
        return [result for result in self.results if not result.healthy]

    def to_payload(self) -> dict:
        return {
            "cells": len(self.results),
            "ok": self.ok,
            "failures": [r.cell.cell_id for r in self.failures()],
            "results": [r.to_payload() for r in self.results],
        }


class ProtocolHarness:
    """Executes campaign cells on named backends and compares digests.

    Args:
        time_scale: wall seconds per virtual unit on the asyncio backend.
        backends: backend names (subset of :data:`repro.rt.BACKENDS`).
    """

    def __init__(
        self,
        backends: Sequence[str] = BACKENDS,
        time_scale: float = DEFAULT_TIME_SCALE,
    ) -> None:
        unknown = set(backends) - set(BACKENDS)
        if unknown:
            raise ValueError(f"unknown backends: {sorted(unknown)}")
        self.backends = tuple(backends)
        self.time_scale = time_scale

    def run_cell(
        self,
        cell: CampaignCell,
        backend: str,
        run_until: Optional[float] = None,
    ) -> BackendRun:
        """One cell on one backend, oracles applied, reduced to a digest."""
        horizon = cell_horizon(cell) if run_until is None else run_until
        started = time.perf_counter()
        with backend_scope(backend, time_scale=self.time_scale):
            obs = observe_cell(cell, run_until=horizon)
        wall = time.perf_counter() - started
        classification, violations = classify_observation(cell, obs)
        return BackendRun(
            backend=backend,
            digest=oracle_digest(cell, obs, classification, violations),
            wall_seconds=wall,
            sim_duration=obs.sim_duration,
        )

    def compare(self, cell: CampaignCell) -> ConformanceCellResult:
        """The cell on every backend; digests must agree."""
        return ConformanceCellResult(
            cell=cell,
            runs=tuple(self.run_cell(cell, name) for name in self.backends),
        )

    def run(
        self,
        cells: Sequence[CampaignCell],
        trace_dir: Optional[Path] = None,
    ) -> ConformanceReport:
        """Compare every cell; on divergence, export both sides' spans."""
        report = ConformanceReport()
        for cell in cells:
            result = self.compare(cell)
            report.results.append(result)
            if not result.healthy and trace_dir is not None:
                export_conformance_traces(
                    cell, trace_dir,
                    backends=self.backends, time_scale=self.time_scale,
                )
        return report


# -- default cell sets -----------------------------------------------------------

CONFORMANCE_VARIANTS = ("base", "ct", "mc", "cd", "cr")


def conformance_cells(
    ns: Sequence[int] = (2, 3, 5),
    variants: Sequence[str] = CONFORMANCE_VARIANTS,
    seed: int = 0,
) -> list[CampaignCell]:
    """The fault-free conformance matrix: every variant at each N.

    Shapes follow the Section 4.4 workload: P = ⌈N/2⌉ raisers and, for
    the variants that model nesting (base, ct, mc), one nested member
    when N ≥ 3.
    """
    cells = []
    for n in ns:
        p = max(1, (n + 1) // 2)
        for variant in variants:
            q = 1 if n >= 3 and p < n and variant in ("base", "ct", "mc") else 0
            cells.append(
                CampaignCell("paper", variant, "none", n, p, q, seed=seed)
            )
    return cells


def fault_cells(
    ns: Sequence[int] = (3, 5), seed: int = 0
) -> list[CampaignCell]:
    """Asyncio fault cells: drop for every variant, crashes per contract.

    The crash-tolerant variant must *finish* under a participant crash;
    the detector-less variants are allowed their documented stall (the
    oracle classifies it ``STALLED-EXPECTED``, which
    :attr:`ConformanceCellResult.healthy` accepts).
    """
    cells = []
    for n in ns:
        p = max(1, (n + 1) // 2)
        for variant in ("base", "ct", "mc", "cd"):
            q = 1 if n >= 3 and p < n and variant in ("base", "ct", "mc") else 0
            cells.append(
                CampaignCell("paper", variant, "drop", n, p, q, seed=seed)
            )
        cells.append(
            CampaignCell("paper", "ct", "crash_participant", n, p, 0, seed=seed)
        )
        cells.append(
            CampaignCell("paper", "base", "crash_participant", n, p, 0, seed=seed)
        )
    return cells


def run_conformance(
    cells: Optional[Sequence[CampaignCell]] = None,
    backends: Sequence[str] = BACKENDS,
    time_scale: float = DEFAULT_TIME_SCALE,
    trace_dir: Optional[Path] = None,
) -> ConformanceReport:
    """One-call conformance pass over ``cells`` (default: the matrix)."""
    harness = ProtocolHarness(backends=backends, time_scale=time_scale)
    return harness.run(
        conformance_cells() if cells is None else cells, trace_dir=trace_dir
    )


# -- divergence artifacts --------------------------------------------------------


def export_conformance_traces(
    cell: CampaignCell,
    out_dir,
    backends: Sequence[str] = BACKENDS,
    time_scale: float = DEFAULT_TIME_SCALE,
) -> list[Path]:
    """Re-run ``cell`` on each backend and dump both span forests.

    Writes ``<cell>_<backend>.chrome.json`` (Perfetto-loadable) and
    ``<cell>_<backend>.tree.txt`` per backend and returns the paths —
    the diffable artifact pair for a sim-vs-real divergence.
    """
    import json

    from repro.obs import render_span_tree, spans_to_chrome

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = cell.cell_id.replace(":", "_")
    paths: list[Path] = []
    for name in backends:
        with backend_scope(name, time_scale=time_scale):
            obs = observe_cell(cell, run_until=cell_horizon(cell))
        runtime = obs.runtime
        if runtime is None or not runtime.spans.enabled:
            continue
        doc = spans_to_chrome(
            runtime.spans,
            process_name=f"repro:{cell.cell_id}:{name}",
            end_time=runtime.sim.now,
        )
        chrome_path = out / f"{stem}_{name}.chrome.json"
        chrome_path.write_text(json.dumps(doc, indent=1) + "\n")
        tree_path = out / f"{stem}_{name}.tree.txt"
        tree_path.write_text(render_span_tree(runtime.spans) + "\n")
        paths.extend([chrome_path, tree_path])
    return paths
