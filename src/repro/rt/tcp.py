"""Localhost TCP transport: protocol messages over real sockets.

The asyncio kernel already gives the protocols real *timers*; this module
additionally gives them a real *wire*.  A :class:`TcpHub` (an asyncio TCP
server) routes length-prefixed frames between registered endpoint
connections, and a :class:`TcpTransport` bridge attaches to a runtime's
network so that every delivery — after the failure injector and latency
model have had their say — crosses a real localhost socket through the
hub and back before reaching the destination object.  Delivery order and
timing then include genuine kernel socket scheduling.

Two frame modes:

* ``token`` (default, in-process) — the frame carries only a routing
  header and an opaque token; the message object itself stays in the
  sending process and is delivered by identity when its token returns.
  No serialisation, so arbitrary payloads (exception trees, object
  references) survive untouched.
* ``pickle`` (multi-process) — the frame carries the pickled
  :class:`~repro.net.message.Message`; a hub plus one process per node
  can then run the protocol across real process boundaries.  The codec
  (:func:`encode_frame` / :func:`decode_frame`) is shared; only payloads
  that pickle cleanly qualify.

Usage (single process, every message over TCP)::

    with tcp_transport():                    # asyncio kernel + socket wire
        result = general_case(4, 2, 1).run(until=100.0)

A standalone hub for multi-process experiments::

    python -m repro rt hub --port 9321
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import pickle
import struct
from typing import Iterator, Optional

from repro.net.message import Message
from repro.objects.runtime import Runtime, runtime_hook
from repro.rt.backend import asyncio_backend
from repro.rt.kernel import DEFAULT_TIME_SCALE, AsyncioKernel

_LEN = struct.Struct("!I")

#: Frame bodies start with one mode byte.
_MODE_JSON = b"J"
_MODE_PICKLE = b"P"


# -- frame codec -----------------------------------------------------------------


def encode_frame(header: dict, message: Optional[Message] = None) -> bytes:
    """One wire frame: length prefix + mode byte + header (+ pickled body).

    ``token`` mode sends just the JSON header; ``pickle`` mode appends the
    pickled message after the header (header gains a ``hlen`` so the
    receiver can split).
    """
    head = json.dumps(header, separators=(",", ":")).encode()
    if message is None:
        body = _MODE_JSON + head
    else:
        body = _MODE_PICKLE + _LEN.pack(len(head)) + head + pickle.dumps(message)
    return _LEN.pack(len(body)) + body


def decode_frame(body: bytes) -> tuple[dict, Optional[Message]]:
    """Inverse of :func:`encode_frame` (body excludes the length prefix)."""
    mode, rest = body[:1], body[1:]
    if mode == _MODE_JSON:
        return json.loads(rest.decode()), None
    if mode == _MODE_PICKLE:
        (hlen,) = _LEN.unpack(rest[: _LEN.size])
        head = rest[_LEN.size : _LEN.size + hlen]
        return json.loads(head.decode()), pickle.loads(rest[_LEN.size + hlen :])
    raise ValueError(f"unknown frame mode {mode!r}")


async def read_frame(reader: asyncio.StreamReader) -> tuple[dict, Optional[Message]]:
    prefix = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(prefix)
    return decode_frame(await reader.readexactly(length))


# -- hub ------------------------------------------------------------------------


class TcpHub:
    """Routes frames between endpoint connections.

    A connection's first frame must be a registration header
    ``{"register": [name, ...]}``; the name ``"*"`` claims every
    otherwise-unregistered destination (the single-process bridge uses
    this).  Every later frame is forwarded verbatim to the connection
    registered for its ``dst``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self.ready = asyncio.Event()
        self._routes: dict[str, asyncio.StreamWriter] = {}
        self._server: asyncio.AbstractServer | None = None

    async def serve(self) -> None:
        """Run the hub until cancelled (an :class:`AsyncioKernel` service)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.ready.set()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            raise
        finally:
            for writer in set(self._routes.values()):
                writer.close()
            self._routes.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        names: list[str] = []
        try:
            header, _ = await read_frame(reader)
            names = list(header.get("register", ()))
            for name in names:
                self._routes[name] = writer
            while True:
                prefix = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(prefix)
                body = await reader.readexactly(length)
                head, _ = decode_frame(body)
                out = self._routes.get(head["dst"]) or self._routes.get("*")
                if out is None:
                    continue  # destination process not up: frame is lost
                out.write(_LEN.pack(len(body)) + body)
                await out.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer closed
        finally:
            for name in names:
                if self._routes.get(name) is writer:
                    del self._routes[name]
            writer.close()


# -- single-process bridge -------------------------------------------------------


class TcpTransport:
    """Divert one runtime's deliveries through a real localhost socket.

    Attaches to ``runtime.network.deliver_via``: at each message's
    ``deliver_at`` the bridge writes a token frame to the hub; when the
    frame comes back on the client connection the message object is
    delivered to its destination.  The kernel's ``hold``/``release``
    bracket the socket round-trip so quiescence detection waits for
    frames in flight.
    """

    def __init__(self, runtime: Runtime, hub: TcpHub | None = None,
                 mode: str = "token") -> None:
        kernel = runtime.sim
        if not isinstance(kernel, AsyncioKernel):
            raise TypeError(
                "TcpTransport requires an AsyncioKernel runtime "
                f"(got {type(kernel).__name__}); use tcp_transport()"
            )
        if mode not in ("token", "pickle"):
            raise ValueError(f"unknown frame mode {mode!r}")
        self.kernel = kernel
        self.network = runtime.network
        self.hub = hub if hub is not None else TcpHub()
        self.own_hub = hub is None
        self.mode = mode
        self.frames_sent = 0
        self.frames_delivered = 0
        self._tokens = itertools.count()
        self._outstanding: dict[int, Message] = {}
        self._writer: asyncio.StreamWriter | None = None
        self._backlog: list[bytes] = []
        self.network.deliver_via = self._on_deliver_at
        if self.own_hub:
            kernel.add_service(self.hub.serve)
        kernel.add_service(self._client)

    # -- send side ---------------------------------------------------------------

    def _on_deliver_at(self, message: Message, deliver_at: float) -> None:
        """``Network.deliver_via`` hook: put the wire leg at ``deliver_at``."""
        self.kernel.hold()  # in flight until the frame returns
        self.kernel.schedule_at(
            deliver_at,
            lambda: self._transmit(message),
            label=f"tcp:{message.kind}:{message.src}->{message.dst}",
        )

    def _transmit(self, message: Message) -> None:
        token = next(self._tokens)
        header = {"dst": message.dst, "token": token}
        if self.mode == "token":
            self._outstanding[token] = message
            frame = encode_frame(header)
        else:
            frame = encode_frame(header, message)
        self.frames_sent += 1
        if self._writer is not None:
            self._writer.write(frame)
        else:
            self._backlog.append(frame)

    # -- receive side -------------------------------------------------------------

    async def _client(self) -> None:
        try:
            await self.hub.ready.wait()
            reader, writer = await asyncio.open_connection(
                self.hub.host, self.hub.port
            )
            writer.write(encode_frame({"register": ["*"]}))
            self._writer = writer
            for frame in self._backlog:
                writer.write(frame)
            self._backlog.clear()
            while True:
                header, pickled = await read_frame(reader)
                if pickled is not None:
                    message = pickled
                else:
                    message = self._outstanding.pop(header["token"])
                self.frames_delivered += 1
                try:
                    self.network._deliver(message)
                finally:
                    self.kernel.release()
        except asyncio.CancelledError:
            raise
        except asyncio.IncompleteReadError:
            pass  # hub shut down first
        except Exception as exc:  # noqa: BLE001 — surface through run()
            self.kernel.fail(exc)
        finally:
            if self._writer is not None:
                self._writer.close()
                self._writer = None


@contextlib.contextmanager
def tcp_transport(
    time_scale: float = DEFAULT_TIME_SCALE, mode: str = "token"
) -> Iterator[list[TcpTransport]]:
    """Asyncio kernel + TCP wire for every runtime built in scope.

    Yields the list of bridges attached so far (one per runtime), so
    callers can read ``frames_sent`` / ``frames_delivered`` afterwards.
    """
    bridges: list[TcpTransport] = []

    def attach(runtime: Runtime) -> None:
        bridges.append(TcpTransport(runtime, mode=mode))

    with asyncio_backend(time_scale=time_scale), runtime_hook(attach):
        yield bridges
