"""Localhost TCP transport: protocol messages over real sockets.

The asyncio kernel already gives the protocols real *timers*; this module
additionally gives them a real *wire*.  A :class:`TcpHub` (an asyncio TCP
server) routes length-prefixed frames between registered endpoint
connections, and a :class:`TcpTransport` bridge attaches to a runtime's
network so that every delivery — after the failure injector and latency
model have had their say — crosses a real localhost socket through the
hub and back before reaching the destination object.  Delivery order and
timing then include genuine kernel socket scheduling.

Two frame modes:

* ``token`` (default, in-process) — the frame carries only a routing
  header and an opaque token; the message object itself stays in the
  sending process and is delivered by identity when its token returns.
  No serialisation, so arbitrary payloads (exception trees, object
  references) survive untouched.
* ``pickle`` (multi-process) — the frame carries the pickled
  :class:`~repro.net.message.Message`; a hub plus one process per node
  can then run the protocol across real process boundaries.  The codec
  (:func:`encode_frame` / :func:`decode_frame`) is shared; only payloads
  that pickle cleanly qualify.

Usage (single process, every message over TCP)::

    with tcp_transport():                    # asyncio kernel + socket wire
        result = general_case(4, 2, 1).run(until=100.0)

A standalone hub for multi-process experiments::

    python -m repro rt hub --port 9321
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import pickle
import struct
from typing import Callable, Iterator, Optional

from repro.net.message import Message
from repro.objects.runtime import Runtime, runtime_hook
from repro.rt.backend import asyncio_backend
from repro.rt.kernel import DEFAULT_TIME_SCALE, AsyncioKernel

_LEN = struct.Struct("!I")

#: Frame bodies start with one mode byte.
_MODE_JSON = b"J"
_MODE_PICKLE = b"P"

#: Ceiling on one frame body.  A misbehaving (or merely confused — e.g.
#: HTTP) client whose first four bytes decode to a huge length must not
#: make ``readexactly`` buffer gigabytes: anything above this is a
#: protocol error, handled without touching the hub's accept loop.
MAX_FRAME = 1 << 20


class FrameError(ValueError):
    """A malformed wire frame (bad mode, truncated body, oversized length).

    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` from :func:`decode_frame` keep working.
    """


# -- frame codec -----------------------------------------------------------------


def encode_frame(header: dict, message: Optional[Message] = None) -> bytes:
    """One wire frame: length prefix + mode byte + header (+ pickled body).

    ``token`` mode sends just the JSON header; ``pickle`` mode appends the
    pickled message after the header (header gains a ``hlen`` so the
    receiver can split).
    """
    head = json.dumps(header, separators=(",", ":")).encode()
    if message is None:
        body = _MODE_JSON + head
    else:
        body = _MODE_PICKLE + _LEN.pack(len(head)) + head + pickle.dumps(message)
    return _LEN.pack(len(body)) + body


def decode_frame(body: bytes) -> tuple[dict, Optional[Message]]:
    """Inverse of :func:`encode_frame` (body excludes the length prefix).

    Raises :class:`FrameError` on anything malformed — empty body, unknown
    mode byte, truncated pickle header, undecodable JSON — so transports
    can treat "bad frame" as one clean error class.
    """
    mode, rest = body[:1], body[1:]
    if mode == _MODE_JSON:
        try:
            header = json.loads(rest.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"undecodable JSON frame header: {exc}") from None
        if not isinstance(header, dict):
            raise FrameError(f"frame header is not an object: {header!r}")
        return header, None
    if mode == _MODE_PICKLE:
        if len(rest) < _LEN.size:
            raise FrameError("truncated pickle frame: missing header length")
        (hlen,) = _LEN.unpack(rest[: _LEN.size])
        if hlen > len(rest) - _LEN.size:
            raise FrameError(
                f"truncated pickle frame: header length {hlen} exceeds body"
            )
        head = rest[_LEN.size : _LEN.size + hlen]
        try:
            header = json.loads(head.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"undecodable JSON frame header: {exc}") from None
        if not isinstance(header, dict):
            raise FrameError(f"frame header is not an object: {header!r}")
        try:
            payload = pickle.loads(rest[_LEN.size + hlen :])
        except Exception as exc:  # pickle raises a zoo of error types
            raise FrameError(f"undecodable pickle payload: {exc}") from None
        return header, payload
    raise FrameError(f"unknown frame mode {mode!r}")


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> tuple[dict, Optional[Message]]:
    """Read one length-prefixed frame.

    Raises :class:`FrameError` on an oversized or empty length prefix and
    lets :class:`asyncio.IncompleteReadError` propagate on disconnect
    (including mid-frame) — callers treat the former as a misbehaving
    peer and the latter as a closed one.
    """
    prefix = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(prefix)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > max_frame:
        raise FrameError(f"frame of {length} bytes exceeds limit {max_frame}")
    return decode_frame(await reader.readexactly(length))


# -- hub ------------------------------------------------------------------------


class TcpHub:
    """Routes frames between endpoint connections.

    A connection's first frame must be a registration header
    ``{"register": [name, ...]}``; the name ``"*"`` claims every
    otherwise-unregistered destination (the single-process bridge uses
    this).  Every later frame is forwarded verbatim to the connection
    registered for its ``dst``.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.ready = asyncio.Event()
        self.frames_routed = 0
        self.frames_dropped = 0
        self.protocol_errors = 0
        #: Observer invoked (with a reason string) on every protocol error,
        #: outside the hub's own error handling — the service layer's
        #: flight recorder hooks this to dump recent request traces when a
        #: peer misbehaves.  Exceptions it raises are swallowed: a broken
        #: observer must not take the hub down.
        self.on_protocol_error: Optional[Callable[[str], None]] = None
        self._routes: dict[str, asyncio.StreamWriter] = {}
        self._server: asyncio.AbstractServer | None = None
        #: Live per-connection handler tasks.  ``start_server`` spawns one
        #: task per connection and forgets it; without tracking them here a
        #: hub stopped with sessions open orphans those tasks and the loop
        #: teardown logs ``Task was destroyed but it is pending``.
        self._conn_tasks: set[asyncio.Task] = set()

    async def serve(self) -> None:
        """Run the hub until cancelled (an :class:`AsyncioKernel` service)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.ready.set()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            raise
        finally:
            # Tear down open sessions deterministically: cancel their
            # reader tasks, let the cancellations unwind (each handler's
            # ``finally`` closes its writer), then close any writer that
            # never got a handler far enough to register.
            tasks = [t for t in self._conn_tasks if not t.done()]
            for task in tasks:
                task.cancel()
            if tasks:
                with contextlib.suppress(Exception):
                    await asyncio.gather(*tasks, return_exceptions=True)
            self._conn_tasks.clear()
            for writer in set(self._routes.values()):
                writer.close()
            self._routes.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        names: list[str] = []
        try:
            header, _ = await read_frame(reader, self.max_frame)
            names = list(header.get("register", ()))
            for name in names:
                self._routes[name] = writer
            while True:
                prefix = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(prefix)
                if not 0 < length <= self.max_frame:
                    raise FrameError(
                        f"frame of {length} bytes outside (0, {self.max_frame}]"
                    )
                body = await reader.readexactly(length)
                head, _ = decode_frame(body)
                out = self._routes.get(head["dst"]) or self._routes.get("*")
                if out is None or out.is_closing():
                    self.frames_dropped += 1
                    continue  # destination process not up: frame is lost
                try:
                    out.write(_LEN.pack(len(body)) + body)
                    await out.drain()
                except (ConnectionResetError, BrokenPipeError):
                    # The *destination* died mid-forward: the frame is lost
                    # (same contract as an unregistered destination), but
                    # this connection keeps serving.
                    self.frames_dropped += 1
                    continue
                self.frames_routed += 1
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer closed (possibly mid-frame)
        except asyncio.CancelledError:
            # Hub stopping.  Exit normally rather than re-raise: asyncio's
            # streams machinery calls ``task.exception()`` on the handler
            # task from a plain callback, which logs a spurious
            # ``CancelledError`` for every cancelled connection otherwise.
            pass
        except (FrameError, KeyError) as exc:
            # Malformed frame or missing "dst": drop this connection only —
            # an unhandled exception here would be logged as a destroyed
            # task and, worse, leave the writer open.
            self.protocol_errors += 1
            observer = self.on_protocol_error
            if observer is not None:
                with contextlib.suppress(Exception):
                    observer(f"{type(exc).__name__}: {exc}")
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            for name in names:
                if self._routes.get(name) is writer:
                    del self._routes[name]
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


# -- single-process bridge -------------------------------------------------------


class TcpTransport:
    """Divert one runtime's deliveries through a real localhost socket.

    Attaches to ``runtime.network.deliver_via``: at each message's
    ``deliver_at`` the bridge writes a token frame to the hub; when the
    frame comes back on the client connection the message object is
    delivered to its destination.  The kernel's ``hold``/``release``
    bracket the socket round-trip so quiescence detection waits for
    frames in flight.
    """

    def __init__(self, runtime: Runtime, hub: TcpHub | None = None,
                 mode: str = "token") -> None:
        kernel = runtime.sim
        if not isinstance(kernel, AsyncioKernel):
            raise TypeError(
                "TcpTransport requires an AsyncioKernel runtime "
                f"(got {type(kernel).__name__}); use tcp_transport()"
            )
        if mode not in ("token", "pickle"):
            raise ValueError(f"unknown frame mode {mode!r}")
        self.kernel = kernel
        self.network = runtime.network
        self.hub = hub if hub is not None else TcpHub()
        self.own_hub = hub is None
        self.mode = mode
        self.frames_sent = 0
        self.frames_delivered = 0
        self._tokens = itertools.count()
        self._outstanding: dict[int, Message] = {}
        self._writer: asyncio.StreamWriter | None = None
        self._backlog: list[bytes] = []
        self.network.deliver_via = self._on_deliver_at
        if self.own_hub:
            kernel.add_service(self.hub.serve)
        kernel.add_service(self._client)

    # -- send side ---------------------------------------------------------------

    def _on_deliver_at(self, message: Message, deliver_at: float) -> None:
        """``Network.deliver_via`` hook: put the wire leg at ``deliver_at``."""
        self.kernel.hold()  # in flight until the frame returns
        self.kernel.schedule_at(
            deliver_at,
            lambda: self._transmit(message),
            label=f"tcp:{message.kind}:{message.src}->{message.dst}",
        )

    def _transmit(self, message: Message) -> None:
        token = next(self._tokens)
        header = {"dst": message.dst, "token": token}
        if self.mode == "token":
            self._outstanding[token] = message
            frame = encode_frame(header)
        else:
            frame = encode_frame(header, message)
        self.frames_sent += 1
        if self._writer is not None:
            self._writer.write(frame)
        else:
            self._backlog.append(frame)

    # -- receive side -------------------------------------------------------------

    async def _client(self) -> None:
        try:
            await self.hub.ready.wait()
            reader, writer = await asyncio.open_connection(
                self.hub.host, self.hub.port
            )
            writer.write(encode_frame({"register": ["*"]}))
            self._writer = writer
            for frame in self._backlog:
                writer.write(frame)
            self._backlog.clear()
            while True:
                header, pickled = await read_frame(reader)
                if pickled is not None:
                    message = pickled
                else:
                    message = self._outstanding.pop(header["token"])
                self.frames_delivered += 1
                try:
                    self.network._deliver(message)
                finally:
                    self.kernel.release()
        except asyncio.CancelledError:
            raise
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # hub shut down first (possibly mid-frame)
        except Exception as exc:  # noqa: BLE001 — surface through run()
            self.kernel.fail(exc)
        finally:
            if self._writer is not None:
                writer, self._writer = self._writer, None
                writer.close()
                # Wait for the transport to actually release the socket so
                # repeated runs (the conformance matrix does hundreds) never
                # accumulate half-closed connections or pending callbacks.
                with contextlib.suppress(Exception):
                    await writer.wait_closed()


@contextlib.contextmanager
def tcp_transport(
    time_scale: float = DEFAULT_TIME_SCALE, mode: str = "token"
) -> Iterator[list[TcpTransport]]:
    """Asyncio kernel + TCP wire for every runtime built in scope.

    Yields the list of bridges attached so far (one per runtime), so
    callers can read ``frames_sent`` / ``frames_delivered`` afterwards.
    """
    bridges: list[TcpTransport] = []

    def attach(runtime: Runtime) -> None:
        bridges.append(TcpTransport(runtime, mode=mode))

    with asyncio_backend(time_scale=time_scale), runtime_hook(attach):
        yield bridges
