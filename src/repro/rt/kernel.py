"""Real-concurrency kernel: the protocol stack on wall-clock asyncio timers.

:class:`AsyncioKernel` implements the :class:`~repro.simkernel.kernel.Kernel`
seam over a private asyncio event loop.  Where the deterministic
:class:`~repro.simkernel.scheduler.Simulator` *jumps* virtual time from
event to event, this kernel *waits*: ``schedule(delay, action)`` arms a
real ``loop.call_at`` timer ``delay * time_scale`` wall-seconds out, and
``now`` is derived from the wall clock.  Timer jitter, callback runtime
and (with the TCP transport) kernel socket scheduling are all real — the
ordering of near-simultaneous events is decided by the operating system,
not by a FIFO tie-break.  That is the point: the conformance kit
(:mod:`repro.rt.harness`) checks that protocol outcomes are *invariant*
under this genuine nondeterminism.

Semantics mirrored from the Simulator so the stack cannot tell backends
apart except by timing:

* ``run(until=...)`` returns once no work is pending (quiescent), the
  deadline passes, or the ``max_events`` budget trips (raising
  :class:`~repro.simkernel.scheduler.SimulationError`, same type);
* exceptions raised by a scheduled action propagate out of ``run``;
* ``run`` may be called repeatedly — timers left over (e.g. past
  ``until``) are re-armed on the next call, and wall time spent *between*
  runs does not advance the clock;
* handles support ``cancel()``/``cancelled``/``time``.

Two extension hooks exist for transports that do work *outside* the timer
set: ``add_service`` registers a long-lived coroutine (started on ``run``,
cancelled when it returns — e.g. a TCP reader), and ``hold``/``release``
bracket in-flight external work (e.g. a frame on a socket) so quiescence
detection does not fire while a message is mid-flight.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.simkernel.scheduler import SimulationError

#: Default wall seconds per virtual time unit.  At 0.005 the canonical
#: unit-latency cells resolve in tens of milliseconds while staying far
#: above timer granularity (~1 ms on Linux), so scheduled order is still
#: meaningfully perturbed by real jitter.
DEFAULT_TIME_SCALE = 0.005


class _RtHandle:
    """A scheduled action: armed on the loop while a run is active."""

    __slots__ = ("_kernel", "time", "action", "label", "cancelled", "_timer")

    def __init__(self, kernel: "AsyncioKernel", time: float,
                 action: Callable[[], Any], label: str) -> None:
        self._kernel = kernel
        self.time = time
        self.action = action
        self.label = label
        self.cancelled = False
        self._timer: asyncio.TimerHandle | None = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._kernel._live.discard(self)


class AsyncioKernel:
    """Wall-clock kernel (see module docstring).

    Args:
        time_scale: wall seconds per virtual time unit.
        start_time: initial virtual time.
    """

    #: Marks runtimes whose timing is physical — observers use this to
    #: skip determinism-only assertions (e.g. exact duration equality).
    realtime = True

    def __init__(
        self,
        time_scale: float = DEFAULT_TIME_SCALE,
        start_time: float = 0.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        self._now = start_time
        self._loop = asyncio.new_event_loop()
        #: Scheduled-but-not-yet-fired handles (armed only while running).
        self._live: set[_RtHandle] = set()
        self._anchor: float | None = None
        self._running = False
        self._error: BaseException | None = None
        self._events_executed = 0
        self._budget_left: int | None = None
        self._holds = 0
        self._service_factories: list[Callable[[], Awaitable[None]]] = []
        self._service_tasks: list[asyncio.Task] = []

    # -- Kernel interface -------------------------------------------------------

    @property
    def now(self) -> float:
        """Virtual time: wall-clock progress divided by ``time_scale``.

        Monotonic by construction — between runs it stays frozen at the
        last value (wall time spent outside ``run`` does not count).
        """
        if self._running and self._anchor is not None:
            wall = (self._loop.time() - self._anchor) / self.time_scale
            if wall > self._now:
                self._now = wall
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending_events(self) -> int:
        return len(self._live)

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> _RtHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self._push(self.now + delay, action, label)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> _RtHandle:
        # Unlike the Simulator this tolerates times slightly in the past:
        # the wall clock drifts past a computed deliver_at while the
        # computing callback itself runs.  Such actions fire immediately.
        return self._push(time, action, label)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until quiescent, ``until`` passes, or the budget trips."""
        if self._running:
            raise SimulationError("kernel is not reentrant")
        loop = self._loop
        self._anchor = loop.time() - self._now * self.time_scale
        self._running = True
        self._error = None
        self._budget_left = max_events
        deadline: asyncio.TimerHandle | None = None
        try:
            if self._live or self._service_factories or self._holds:
                for handle in list(self._live):
                    self._arm(handle)
                for factory in self._service_factories:
                    self._service_tasks.append(loop.create_task(factory()))
                if until is not None:
                    deadline = loop.call_at(
                        self._anchor + until * self.time_scale, loop.stop
                    )
                loop.run_forever()
        finally:
            # Not running from here on: a cancelled service that calls
            # release() in its finally must not loop.stop() the cleanup
            # gather below ("Event loop stopped before Future completed",
            # orphaning every task the gather was reaping).
            self._running = False
            if deadline is not None:
                deadline.cancel()
            for task in self._service_tasks:
                task.cancel()
            if self._service_tasks:
                # Let cancellations unwind (closes sockets cleanly).
                loop.run_until_complete(
                    asyncio.gather(*self._service_tasks, return_exceptions=True)
                )
            self._service_tasks.clear()
            for handle in self._live:
                if handle._timer is not None:
                    handle._timer.cancel()
                    handle._timer = None
        if self._error is not None:
            error, self._error = self._error, None
            raise error
        if until is not None and until > self._now:
            self._now = until

    def close(self) -> None:
        """Close the underlying loop (the kernel is finished after this)."""
        if not self._loop.is_closed():
            self._loop.close()

    # -- transport hooks ---------------------------------------------------------

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The kernel's private event loop (for transports)."""
        return self._loop

    def add_service(self, factory: Callable[[], Awaitable[None]]) -> None:
        """Register a long-lived coroutine started on every ``run``.

        Services (TCP hubs, connection readers) do not count as pending
        work: an otherwise-quiescent kernel stops even while they run —
        they are infrastructure, not protocol activity.
        """
        self._service_factories.append(factory)

    def fail(self, error: BaseException) -> None:
        """Abort the current run with ``error`` (re-raised from ``run``).

        For services: an exception inside a service coroutine would
        otherwise die silently in its task — this routes it out of
        ``run()`` exactly like an exception in a scheduled action.
        """
        if self._error is None:
            self._error = error
        self._loop.stop()

    def hold(self) -> None:
        """Mark one unit of in-flight external work (blocks quiescence)."""
        self._holds += 1

    def release(self) -> None:
        """Release a :meth:`hold`; stops the loop if nothing remains."""
        if self._holds <= 0:
            raise SimulationError("release() without a matching hold()")
        self._holds -= 1
        self._maybe_stop()

    # -- internals ---------------------------------------------------------------

    def _push(self, time: float, action: Callable[[], Any], label: str) -> _RtHandle:
        handle = _RtHandle(self, time, action, label)
        self._live.add(handle)
        if self._running:
            self._arm(handle)
        return handle

    def _arm(self, handle: _RtHandle) -> None:
        assert self._anchor is not None
        handle._timer = self._loop.call_at(
            self._anchor + handle.time * self.time_scale, self._fire, handle
        )

    def _fire(self, handle: _RtHandle) -> None:
        if handle.cancelled:
            return
        self._live.discard(handle)
        handle._timer = None
        if self._budget_left is not None:
            if self._budget_left <= 0:
                self._error = SimulationError(
                    f"event budget exhausted after {self._events_executed} "
                    f"events at t={self.now}; likely livelock"
                )
                self._loop.stop()
                return
            self._budget_left -= 1
        self._events_executed += 1
        if handle.time > self._now:
            self._now = handle.time
        try:
            handle.action()
        except BaseException as exc:  # noqa: BLE001 — propagate out of run()
            self._error = exc
            self._loop.stop()
            return
        self._maybe_stop()

    def _maybe_stop(self) -> None:
        if self._running and not self._live and self._holds == 0:
            self._loop.stop()
