"""Real-concurrency backend (Section 4.5's "practical infrastructure").

The paper sketches its implementation on a real distributed runtime —
reliable multicast, meta-object protocol — while every experiment in this
repo up to PR 4 ran on the deterministic simkernel.  This package closes
that gap: the **same** protocol state machines execute on real asyncio
wall-clock timers (:class:`AsyncioKernel`), over the same channel /
failure-injection / ARQ / heartbeat stack, optionally with every message
riding a real localhost TCP socket (:class:`TcpTransport`).

The headline deliverable is the conformance kit (:mod:`repro.rt.harness`):
run identical campaign cells on both backends and check their oracle
digests agree — the sim-vs-real gap as a correctness oracle.
"""

from repro.rt.backend import BACKENDS, asyncio_backend, backend
from repro.rt.harness import (
    ConformanceCellResult,
    ConformanceReport,
    ProtocolHarness,
    conformance_cells,
    oracle_digest,
    run_conformance,
)
from repro.rt.kernel import DEFAULT_TIME_SCALE, AsyncioKernel
from repro.rt.tcp import TcpHub, TcpTransport, tcp_transport

__all__ = [
    "AsyncioKernel",
    "BACKENDS",
    "ConformanceCellResult",
    "ConformanceReport",
    "DEFAULT_TIME_SCALE",
    "ProtocolHarness",
    "TcpHub",
    "TcpTransport",
    "asyncio_backend",
    "backend",
    "conformance_cells",
    "oracle_digest",
    "run_conformance",
    "tcp_transport",
]
