"""Backend selection helpers for real-concurrency runs.

The variant runners (``run_crash_tolerant``, ``run_multicast_resolution``,
…) build their :class:`~repro.objects.runtime.Runtime` internally, so the
asyncio kernel is installed around them via the kernel seam::

    with asyncio_backend(time_scale=0.005):
        result = run_crash_tolerant(5, raisers=2)

Every Runtime constructed inside the block runs on a fresh
:class:`~repro.rt.kernel.AsyncioKernel` — same protocol state machines,
real wall-clock timers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.simkernel.kernel import kernel_backend
from repro.rt.kernel import DEFAULT_TIME_SCALE, AsyncioKernel

#: Names accepted wherever a backend is selected by string.
BACKENDS = ("sim", "asyncio")


@contextmanager
def asyncio_backend(time_scale: float = DEFAULT_TIME_SCALE) -> Iterator[None]:
    """Run every Runtime built in scope on a fresh asyncio kernel."""
    with kernel_backend(lambda: AsyncioKernel(time_scale=time_scale)):
        yield


@contextmanager
def backend(name: str, time_scale: float = DEFAULT_TIME_SCALE) -> Iterator[None]:
    """``"sim"`` (deterministic, default kernel) or ``"asyncio"``."""
    if name == "sim":
        yield
    elif name == "asyncio":
        with asyncio_backend(time_scale=time_scale):
            yield
    else:
        raise ValueError(f"unknown backend {name!r} (expected one of {BACKENDS})")
