"""External atomic objects.

"Objects that are external to the CA action and can be shared with other
actions and objects concurrently must be atomic and individually
responsible for their own integrity" (paper Section 3).  An
:class:`AtomicObject` is a named key-value state whose mutations only
happen through transactions; it can carry an integrity *invariant* checked
at commit, making the object responsible for its own consistency.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

_MISSING = object()


class IntegrityError(RuntimeError):
    """Committing would leave the atomic object violating its invariant."""


class AtomicObject:
    """A shared, transactionally updated object."""

    def __init__(
        self,
        name: str,
        initial: dict[Hashable, Any] | None = None,
        invariant: Callable[[dict[Hashable, Any]], bool] | None = None,
    ) -> None:
        self.name = name
        self._state: dict[Hashable, Any] = dict(initial or {})
        self._invariant = invariant
        #: Count of committed top-level transactions that touched this
        #: object — a cheap version number for tests and recovery points.
        self.version = 0

    # -- raw access (used by the transaction layer and undo records) ---------

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Read without a transaction (monitoring/assertions only)."""
        return self._state.get(key, default)

    def snapshot(self) -> dict[Hashable, Any]:
        """Copy of the full state (recovery points, acceptance tests)."""
        return dict(self._state)

    def get(self, key: Hashable) -> Any:
        value = self._state.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(f"{self.name} has no key {key!r}")
        return value

    def probe(self, key: Hashable) -> tuple[Any, bool]:
        """Non-mutating ``(value, existed)`` read — the undo information a
        write-ahead log must persist *before* the mutation happens."""
        return self._state.get(key), key in self._state

    def put(self, key: Hashable, value: Any) -> tuple[Any, bool]:
        """Raw write; returns ``(old_value, existed)`` for undo logging."""
        existed = key in self._state
        old_value = self._state.get(key)
        self._state[key] = value
        return old_value, existed

    def restore(self, key: Hashable, value: Any) -> None:
        self._state[key] = value

    def remove(self, key: Hashable) -> None:
        self._state.pop(key, None)

    def restore_snapshot(self, snapshot: dict[Hashable, Any]) -> None:
        """Replace the whole state (conversation rollback)."""
        self._state = dict(snapshot)

    # -- integrity -----------------------------------------------------------

    def check_integrity(self) -> None:
        """Raise :class:`IntegrityError` if the invariant does not hold."""
        if self._invariant is not None and not self._invariant(self._state):
            raise IntegrityError(f"{self.name}: invariant violated: {self._state}")

    def __repr__(self) -> str:
        return f"AtomicObject({self.name}, v{self.version}, {self._state})"
