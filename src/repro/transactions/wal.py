"""Write-ahead logging for atomic objects.

The paper grounds recovery of atomic objects in undo logs ("the 'bottom
line' of relying on undoing all previous modifications", Section 3.1), but
an undo log that lives only in memory dies with its node: a participant
crash is pure silence and the crashed node can never *come back*.  This
module makes the undo state durable — an append-only per-node file of
``begin`` / ``write`` (undo info) / ``prepare`` / ``commit`` / ``abort``
records plus free-form ``action`` checkpoints for the protocol layer —
with explicit fsync points and a torn-tail-tolerant reader, so a restarted
node can replay the log and resume from a transaction-consistent state.

Logging discipline (undo-only, matching the paper):

* ``write`` records carry the *old* value and are appended before the
  in-place mutation (the WAL rule), buffered;
* ``prepare`` / top-level ``commit`` / ``abort`` / ``action`` records are
  durable points — appended with an fsync;
* an ``abort`` record means the runtime finished rolling the transaction
  back, so replay must not undo it again; a transaction with neither
  ``commit`` nor ``abort`` is *incomplete* and replay undoes its writes
  (idempotently — undo restores absolute old values, so a crash mid-undo
  or a double restart converges to the same state);
* nested commit is relative: a child's ``commit`` promotes its writes to
  the parent, so they stay undoable until the top level commits — replay
  follows the ownership chain exactly like
  :meth:`repro.transactions.log.UndoLog.extend_from` does in memory.

Record wire format: one line per record, ``<crc32 hex> <compact json>``.
The reader validates each line's checksum and shape and stops at the first
bad one — a torn tail (the node died mid-append) is detected and safely
discarded, never propagated as garbage state.

Scope note: this repo's :class:`~repro.transactions.atomic_object.
AtomicObject` state stands in for durable object storage (it survives a
simulated crash); the WAL's job is *atomicity across the crash* — undoing
transactions the crash cut short — not media recovery.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transactions.atomic_object import AtomicObject


class WalError(RuntimeError):
    """Misuse of the WAL (closed log, malformed typed record...)."""


# -- value encoding ----------------------------------------------------------------

#: Types stored verbatim in the JSON record.  Everything else (tuples,
#: dataclasses, sets...) round-trips through pickle so replay restores the
#: *exact* object an in-memory undo would have — a tuple key silently
#: becoming a list on decode would make post-replay state diverge from
#: pure in-memory abort state.
_JSON_TYPES = (type(None), bool, int, float, str)


def encode_value(value: Any) -> list:
    if type(value) in _JSON_TYPES:
        return ["j", value]
    return ["p", base64.b64encode(pickle.dumps(value)).decode("ascii")]


def decode_value(enc: list) -> Any:
    tag, payload = enc
    if tag == "j":
        return payload
    if tag == "p":
        return pickle.loads(base64.b64decode(payload.encode("ascii")))
    raise WalError(f"unknown value encoding tag {tag!r}")


# -- writer ------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only per-node log with checksummed records and fsync points.

    Args:
        path: the log file (created, with parents, if missing; appended
            to if present — reopen an existing log only after
            :func:`recover` has truncated any torn tail).
        fsync: honour durable points with a real ``os.fsync``.  Tests and
            benchmarks that only exercise replay logic can pass ``False``
            to keep the flush-to-OS boundary without paying disk latency.
    """

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        self._fsync = fsync
        self.records_written = 0
        self.syncs = 0

    # -- raw append -------------------------------------------------------------

    def append(self, record: dict, sync: bool = False) -> None:
        """Append one record; ``sync`` makes it a durable point."""
        if self._fh.closed:
            raise WalError(f"WAL {self.path} is closed")
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        line = b"%08x %s\n" % (zlib.crc32(payload), payload)
        self._fh.write(line)
        self.records_written += 1
        if sync:
            self.sync()

    def sync(self) -> None:
        """Flush buffered records and (when enabled) fsync to disk."""
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        self.syncs += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    # -- typed records ------------------------------------------------------------

    def log_begin(self, txn_id: int, parent_id: Optional[int] = None) -> None:
        self.append({"t": "begin", "txn": txn_id, "parent": parent_id})

    def log_write(
        self, txn_id: int, obj_name: str, key: Any, old_value: Any, existed: bool
    ) -> None:
        """Undo info for one write — appended *before* the mutation."""
        self.append({
            "t": "write", "txn": txn_id, "obj": obj_name,
            "key": encode_value(key), "old": encode_value(old_value),
            "existed": existed,
        })

    def log_prepare(self, txn_id: int) -> None:
        """The participant has done its part and awaits the verdict."""
        self.append({"t": "prepare", "txn": txn_id}, sync=True)

    def log_commit(self, txn_id: int, top: bool) -> None:
        """Nested commit promotes to the parent; top-level commit is the
        durable point that settles the whole tree."""
        self.append({"t": "commit", "txn": txn_id, "top": top}, sync=top)

    def log_abort(self, txn_id: int, recovered: bool = False) -> None:
        """The transaction's writes have been fully rolled back (at
        runtime, or by replay when ``recovered``)."""
        record = {"t": "abort", "txn": txn_id}
        if recovered:
            record["recovered"] = True
        self.append(record, sync=True)

    def log_action(self, action: str, state: str, **extra: Any) -> None:
        """Protocol-layer checkpoint: the node's last known action state."""
        record = {"t": "action", "action": action, "state": state}
        for key, value in extra.items():
            record[key] = value
        self.append(record, sync=True)

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path}, records={self.records_written}, "
            f"syncs={self.syncs})"
        )


# -- reader ------------------------------------------------------------------------


@dataclass(frozen=True)
class WalScan:
    """Raw scan result: the valid record prefix plus tail diagnostics."""

    records: tuple[dict, ...]
    valid_bytes: int
    torn: bool  #: trailing bytes failed validation and were discarded
    torn_bytes: int = 0


def scan_wal(path: str | Path) -> WalScan:
    """Read every valid record; stop at (and report) a torn tail.

    Tolerates every way an append can die mid-flight: a partial line with
    no newline, a line whose checksum does not match its payload, payload
    bytes that are not JSON, and JSON that is not a record object.  The
    valid prefix is always returned — a torn tail never poisons it.
    """
    data = Path(path).read_bytes()
    records: list[dict] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # partial final line: the append died mid-write
        line = data[offset:newline]
        sep = line.find(b" ")
        if sep != 8:
            break
        try:
            crc = int(line[:sep], 16)
        except ValueError:
            break
        payload = line[sep + 1:]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = json.loads(payload)
        except ValueError:
            break
        if not isinstance(record, dict) or "t" not in record:
            break
        records.append(record)
        offset = newline + 1
    return WalScan(
        records=tuple(records),
        valid_bytes=offset,
        torn=offset < len(data),
        torn_bytes=len(data) - offset,
    )


# -- replay ------------------------------------------------------------------------

#: Transaction statuses replay distinguishes.
ACTIVE = "active"
PREPARED = "prepared"
COMMITTED = "committed"
ABORTED = "aborted"


@dataclass(frozen=True)
class UndoOp:
    """One write to reverse, decoded and ready to apply."""

    txn_id: int
    obj_name: str
    key: Any
    old_value: Any
    existed: bool

    def apply(self, obj: "AtomicObject") -> None:
        if self.existed:
            obj.restore(self.key, self.old_value)
        else:
            obj.remove(self.key)


@dataclass
class WalRecovery:
    """What replay reconstructed from one node's log.

    ``undo_ops`` are already in application order (newest write first) and
    cover exactly the transactions the crash cut short: redo is never
    needed (undo-only logging — committed effects are in place, aborted
    effects were rolled back before their durable ``abort`` record).
    """

    statuses: dict[int, str] = field(default_factory=dict)
    parents: dict[int, Optional[int]] = field(default_factory=dict)
    undo_ops: list[UndoOp] = field(default_factory=list)
    incomplete: tuple[int, ...] = ()
    #: action name -> the last ``action`` checkpoint record for it.
    action_states: dict[str, dict] = field(default_factory=dict)
    torn: bool = False
    records_read: int = 0

    def action_state(self, action: str) -> Optional[dict]:
        return self.action_states.get(action)

    def apply(self, objects: Mapping[str, "AtomicObject"]) -> int:
        """Undo incomplete transactions against the durable objects.

        Objects the log mentions but ``objects`` does not hold are
        skipped loudly via :class:`WalError` — recovering against the
        wrong object set is a deployment bug, not a tolerable condition.
        Returns how many writes were undone.
        """
        undone = 0
        for op in self.undo_ops:
            obj = objects.get(op.obj_name)
            if obj is None:
                raise WalError(
                    f"WAL names object {op.obj_name!r} absent from the "
                    f"recovery set {sorted(objects)}"
                )
            op.apply(obj)
            undone += 1
        return undone


def _effective_status(
    txn_id: int,
    statuses: Mapping[int, str],
    parents: Mapping[int, Optional[int]],
    tops: Mapping[int, bool],
) -> str:
    """Fate of a transaction's writes, following nested-commit promotion."""
    cursor: Optional[int] = txn_id
    while cursor is not None:
        status = statuses.get(cursor, ACTIVE)
        if status == ABORTED:
            return ABORTED
        if status == COMMITTED:
            if tops.get(cursor, parents.get(cursor) is None):
                return COMMITTED
            cursor = parents.get(cursor)
            continue
        return ACTIVE  # active or prepared: the crash cut it short
    return COMMITTED  # defensive: ran off the top of the chain


def replay_records(
    records: Iterable[dict], torn: bool = False
) -> WalRecovery:
    """Reduce a scanned record stream to recovery decisions.

    Redo nothing; undo every write whose (promotion-followed) owning
    transaction neither committed at top level nor finished a runtime
    abort; surface the last protocol checkpoint per action.
    """
    statuses: dict[int, str] = {}
    parents: dict[int, Optional[int]] = {}
    tops: dict[int, bool] = {}
    writes: list[dict] = []
    action_states: dict[str, dict] = {}
    count = 0
    for record in records:
        count += 1
        kind = record["t"]
        if kind == "begin":
            txn = record["txn"]
            statuses[txn] = ACTIVE
            parents[txn] = record.get("parent")
        elif kind == "write":
            writes.append(record)
        elif kind == "prepare":
            statuses[record["txn"]] = PREPARED
        elif kind == "commit":
            txn = record["txn"]
            statuses[txn] = COMMITTED
            tops[txn] = bool(record.get("top"))
        elif kind == "abort":
            statuses[record["txn"]] = ABORTED
        elif kind == "action":
            action_states[record["action"]] = record
        # Unknown kinds are skipped: old logs stay replayable as the
        # record vocabulary grows.
    undo_ops = [
        UndoOp(
            txn_id=w["txn"],
            obj_name=w["obj"],
            key=decode_value(w["key"]),
            old_value=decode_value(w["old"]),
            existed=w["existed"],
        )
        for w in reversed(writes)
        if _effective_status(w["txn"], statuses, parents, tops) == ACTIVE
    ]
    incomplete = tuple(
        txn for txn in statuses
        if _effective_status(txn, statuses, parents, tops) == ACTIVE
        and statuses[txn] in (ACTIVE, PREPARED)
    )
    return WalRecovery(
        statuses=statuses, parents=parents, undo_ops=undo_ops,
        incomplete=incomplete, action_states=action_states,
        torn=torn, records_read=count,
    )


def recover(
    path: str | Path,
    objects: Optional[Mapping[str, "AtomicObject"]] = None,
    fsync: bool = True,
) -> tuple[WalRecovery, WriteAheadLog]:
    """Full restart path for one node's log.

    Scans the log (discarding any torn tail by truncating the file to its
    valid prefix), replays it, applies the undo set to ``objects`` (when
    given), then reopens the log for appending and writes a durable
    ``abort`` record for each recovered-incomplete transaction — so a
    second restart replays idempotently and undoes nothing.
    """
    path = Path(path)
    scan = scan_wal(path) if path.exists() else WalScan((), 0, False)
    if scan.torn:
        with open(path, "r+b") as fh:
            fh.truncate(scan.valid_bytes)
    recovery = replay_records(scan.records, torn=scan.torn)
    if objects is not None:
        recovery.apply(objects)
    wal = WriteAheadLog(path, fsync=fsync)
    for txn_id in recovery.incomplete:
        wal.log_abort(txn_id, recovered=True)
    return recovery, wal
