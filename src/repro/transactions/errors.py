"""Transaction-layer errors."""

from __future__ import annotations


class TransactionError(RuntimeError):
    """Base class of transaction-layer failures."""


class TransactionStateError(TransactionError):
    """Operation invalid for the transaction's current state."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (explicitly or by deadlock resolution)."""


class LockConflictError(TransactionError):
    """A non-waiting acquire could not be granted immediately."""


class DeadlockError(TransactionError):
    """Granting the request would create a wait-for cycle."""

    def __init__(self, cycle: list[int]):
        super().__init__(f"wait-for cycle: {' -> '.join(map(str, cycle))}")
        self.cycle = cycle
