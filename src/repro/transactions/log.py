"""Undo logging.

Backward recovery of atomic objects: every transactional write records the
previous value; aborting replays the records in reverse — "the 'bottom
line' of relying on undoing all previous modifications" (paper Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transactions.atomic_object import AtomicObject


@dataclass(frozen=True)
class UndoRecord:
    """Reverses one write: restore ``key`` of ``target`` to ``old_value``.

    ``existed`` distinguishes overwriting an existing key from creating a
    new one (undo of a create is a delete).
    """

    target: "AtomicObject"
    key: Hashable
    old_value: Any
    existed: bool

    def apply(self) -> None:
        if self.existed:
            self.target.restore(self.key, self.old_value)
        else:
            self.target.remove(self.key)


class UndoLog:
    """Ordered undo records for one transaction."""

    def __init__(self) -> None:
        self._records: list[UndoRecord] = []

    def append(self, record: UndoRecord) -> None:
        self._records.append(record)

    def extend_from(self, other: "UndoLog") -> None:
        """Absorb a committing child's records (they precede nothing of
        ours chronologically after the child finished, so appending keeps
        reverse-order undo correct for the parent)."""
        self._records.extend(other._records)
        other._records = []

    def undo_all(self) -> int:
        """Apply all records newest-first; returns how many were undone."""
        count = 0
        while self._records:
            self._records.pop().apply()
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._records)
