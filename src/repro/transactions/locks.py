"""Strict two-phase locking with deadlock detection.

Transactions acquire shared/exclusive locks on resources (atomic objects)
and hold them until commit or abort (strict 2PL), which gives the isolation
the paper requires of external atomic objects.  Conflicting requests either
fail fast (``wait=False``) or queue with a granted-callback; a wait-for
graph is maintained and a request that would close a cycle is rejected with
:class:`DeadlockError` at enqueue time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.transactions.errors import DeadlockError, LockConflictError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _Waiter:
    txn_id: int
    mode: LockMode
    on_granted: Callable[[], None]


@dataclass
class _ResourceLock:
    holders: dict[int, LockMode] = field(default_factory=dict)
    queue: list[_Waiter] = field(default_factory=list)


def _compatible(requested: LockMode, held: LockMode) -> bool:
    return requested is LockMode.SHARED and held is LockMode.SHARED


class LockManager:
    """Lock table over hashable resource ids."""

    def __init__(self) -> None:
        self._table: dict[Hashable, _ResourceLock] = {}

    # -- queries ---------------------------------------------------------------

    def holds(self, txn_id: int, resource: Hashable, mode: LockMode) -> bool:
        """True if ``txn_id`` holds a lock at least as strong as ``mode``."""
        lock = self._table.get(resource)
        if lock is None:
            return False
        held = lock.holders.get(txn_id)
        if held is None:
            return False
        return held is LockMode.EXCLUSIVE or mode is LockMode.SHARED

    def held_resources(self, txn_id: int) -> list[Hashable]:
        return [
            resource
            for resource, lock in self._table.items()
            if txn_id in lock.holders
        ]

    # -- acquisition -----------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        resource: Hashable,
        mode: LockMode,
        wait: bool = False,
        on_granted: Callable[[], None] | None = None,
        ancestors: frozenset[int] = frozenset(),
    ) -> bool:
        """Request a lock.

        Returns ``True`` when granted immediately.  On conflict: with
        ``wait=False`` raises :class:`LockConflictError`; with ``wait=True``
        enqueues the request (``on_granted`` fires later) unless the wait
        would deadlock, in which case :class:`DeadlockError` is raised and
        nothing is queued.

        ``ancestors`` implements nested-transaction locking: holders that
        are ancestors of the requester never conflict with it (a nested
        action may use what its enclosing action already holds).
        """
        lock = self._table.setdefault(resource, _ResourceLock())
        if self._grantable(lock, txn_id, mode, ancestors):
            self._grant(lock, txn_id, mode)
            return True
        if not wait:
            raise LockConflictError(
                f"txn {txn_id} cannot {mode.value}-lock {resource!r} "
                f"(held by {sorted(set(lock.holders) - {txn_id})})"
            )
        if on_granted is None:
            raise ValueError("waiting acquire requires on_granted callback")
        cycle = self._would_deadlock(txn_id, lock)
        if cycle:
            raise DeadlockError(cycle)
        lock.queue.append(_Waiter(txn_id, mode, on_granted))
        return False

    def _grantable(
        self,
        lock: _ResourceLock,
        txn_id: int,
        mode: LockMode,
        ancestors: frozenset[int] = frozenset(),
    ) -> bool:
        held = lock.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE or held is mode:
            return True  # re-entrant or already stronger
        others = {
            t: m
            for t, m in lock.holders.items()
            if t != txn_id and t not in ancestors
        }
        if held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            return not others  # upgrade only as sole (non-ancestor) holder
        if mode is LockMode.SHARED:
            # FIFO fairness: behind a queued EXCLUSIVE waiter, new shared
            # requests must queue too (prevents writer starvation).
            writer_queued = any(w.mode is LockMode.EXCLUSIVE for w in lock.queue)
            return not writer_queued and all(
                _compatible(mode, m) for m in others.values()
            )
        return not others and not lock.queue

    def _grant(self, lock: _ResourceLock, txn_id: int, mode: LockMode) -> None:
        held = lock.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE:
            return
        lock.holders[txn_id] = mode if held is None else (
            LockMode.EXCLUSIVE if mode is LockMode.EXCLUSIVE else held
        )

    # -- release ------------------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` and wake eligible waiters."""
        for resource in list(self._table):
            lock = self._table[resource]
            if txn_id in lock.holders:
                del lock.holders[txn_id]
            lock.queue = [w for w in lock.queue if w.txn_id != txn_id]
            self._wake(lock)
            if not lock.holders and not lock.queue:
                del self._table[resource]

    def transfer(self, from_txn: int, to_txn: int) -> None:
        """Move all locks of ``from_txn`` to ``to_txn``.

        Lock inheritance at nested-transaction commit: the parent keeps the
        child's locks until the top-level outcome, preserving isolation of
        the nested action's effects.
        """
        for lock in self._table.values():
            mode = lock.holders.pop(from_txn, None)
            if mode is None:
                continue
            existing = lock.holders.get(to_txn)
            if existing is LockMode.EXCLUSIVE or mode is LockMode.EXCLUSIVE:
                lock.holders[to_txn] = LockMode.EXCLUSIVE
            else:
                lock.holders[to_txn] = mode

    def _wake(self, lock: _ResourceLock) -> None:
        while lock.queue:
            waiter = lock.queue[0]
            held = lock.holders.get(waiter.txn_id)
            others = {t for t in lock.holders if t != waiter.txn_id}
            if waiter.mode is LockMode.SHARED:
                ok = all(
                    lock.holders[t] is LockMode.SHARED for t in others
                )
            else:
                ok = not others and held in (None, LockMode.SHARED)
            if not ok:
                return
            lock.queue.pop(0)
            self._grant(lock, waiter.txn_id, waiter.mode)
            waiter.on_granted()

    # -- deadlock detection ----------------------------------------------------------

    def _would_deadlock(self, txn_id: int, lock: _ResourceLock) -> list[int]:
        """Cycle that enqueueing ``txn_id`` on ``lock`` would create, if any."""
        blockers = {t for t in lock.holders if t != txn_id}
        blockers.update(w.txn_id for w in lock.queue if w.txn_id != txn_id)
        graph = self._wait_for_graph()
        graph.setdefault(txn_id, set()).update(blockers)
        # DFS from txn_id looking for a path back to txn_id.
        path: list[int] = []

        def dfs(node: int, visited: set[int]) -> list[int]:
            path.append(node)
            for succ in sorted(graph.get(node, ())):
                if succ == txn_id:
                    return [*path, txn_id]
                if succ not in visited:
                    visited.add(succ)
                    found = dfs(succ, visited)
                    if found:
                        return found
            path.pop()
            return []

        return dfs(txn_id, {txn_id})

    def _wait_for_graph(self) -> dict[int, set[int]]:
        graph: dict[int, set[int]] = {}
        for lock in self._table.values():
            ahead: list[int] = list(lock.holders)
            for waiter in lock.queue:
                edges = graph.setdefault(waiter.txn_id, set())
                edges.update(t for t in ahead if t != waiter.txn_id)
                ahead.append(waiter.txn_id)
        return graph
