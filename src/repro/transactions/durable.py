"""Durable atomic-object store: objects + WAL + manager + restart path.

This is the glue a *node* uses: open a store over its atomic objects and
its per-node WAL file, and the constructor runs the full restart path
first — scan (truncating any torn tail), replay, undo incomplete
transactions, mark them recovered — before handing back a
:class:`~repro.transactions.manager.TransactionManager` whose every
mutation is WAL-logged from then on.  Opening a store over a fresh path
is a no-op recovery, so the same code serves first boot and restart.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Optional

from repro.transactions.atomic_object import AtomicObject
from repro.transactions.manager import TransactionManager
from repro.transactions.wal import WalRecovery, recover


class DurableStore:
    """One node's durable transaction state.

    Args:
        path: the node's WAL file.
        objects: the atomic objects this node hosts (these stand in for
            durable object storage — see the scope note in
            :mod:`repro.transactions.wal`).
        fsync: pass ``False`` to skip real ``os.fsync`` calls (tests,
            simulated-time benchmarks).
    """

    def __init__(
        self,
        path: str | Path,
        objects: Iterable[AtomicObject],
        fsync: bool = True,
    ) -> None:
        self.path = Path(path)
        self.objects: dict[str, AtomicObject] = {obj.name: obj for obj in objects}
        self.recovery: WalRecovery
        self.recovery, self.wal = recover(self.path, self.objects, fsync=fsync)
        self.manager = TransactionManager(wal=self.wal)

    # -- protocol checkpoints ------------------------------------------------

    def checkpoint_action(self, action: str, state: str, **extra: Any) -> None:
        """Durably record the node's last known action state, so a
        restart knows which action it was inside and how far it got."""
        self.wal.log_action(action, state, **extra)

    def last_action_state(self, action: str) -> Optional[dict]:
        """The replayed checkpoint for ``action`` (``None`` on first
        boot or if the node never checkpointed it)."""
        return self.recovery.action_state(action)

    # -- lifecycle -----------------------------------------------------------

    @property
    def recovered_incomplete(self) -> tuple[int, ...]:
        """Transaction ids the restart path undid (crash cut them short)."""
        return self.recovery.incomplete

    def close(self) -> None:
        self.wal.close()

    def __repr__(self) -> str:
        return (
            f"DurableStore({self.path}, objects={sorted(self.objects)}, "
            f"recovered={len(self.recovery.incomplete)})"
        )
