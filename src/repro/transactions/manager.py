"""Transactions and the transaction manager.

Provides the three functions the paper lets exception handlers call
explicitly — ``start``, ``commit`` and ``abort`` (Section 3.1 / Figure 2) —
plus nested transactions matching nested CA actions ("a nested CA action
... has all properties of a nested transaction in the terms of atomic
objects", Section 3.1).

Semantics:

* strict 2PL via :class:`~repro.transactions.locks.LockManager`;
* undo logs per transaction; abort restores state in reverse order;
* nested commit is *relative*: locks and undo records are inherited by the
  parent, so the whole nest remains undoable until the top level commits;
* top-level commit checks every touched object's integrity invariant, then
  bumps its version and releases locks.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.transactions.atomic_object import AtomicObject
from repro.transactions.errors import TransactionStateError
from repro.transactions.locks import LockManager, LockMode
from repro.transactions.log import UndoLog, UndoRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transactions.wal import WriteAheadLog


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One (possibly nested) transaction."""

    def __init__(
        self, manager: "TransactionManager", txn_id: int, parent: "Transaction | None"
    ) -> None:
        self.manager = manager
        self.txn_id = txn_id
        self.parent = parent
        self.children: list[Transaction] = []
        self.state = TxnState.ACTIVE
        self.undo = UndoLog()
        self.touched: set[AtomicObject] = set()

    # -- data operations ---------------------------------------------------------

    def ancestor_ids(self) -> frozenset[int]:
        """Ids of all enclosing transactions (for nested-txn locking)."""
        ids = set()
        cursor = self.parent
        while cursor is not None:
            ids.add(cursor.txn_id)
            cursor = cursor.parent
        return frozenset(ids)

    def read(self, obj: AtomicObject, key: Hashable) -> Any:
        """Read under a shared lock (fails fast on conflict)."""
        self._require_active()
        self.manager.locks.acquire(
            self.txn_id, obj.name, LockMode.SHARED, ancestors=self.ancestor_ids()
        )
        self.touched.add(obj)
        return obj.get(key)

    def write(self, obj: AtomicObject, key: Hashable, value: Any) -> None:
        """Write under an exclusive lock, logging undo information."""
        self._require_active()
        self.manager.locks.acquire(
            self.txn_id, obj.name, LockMode.EXCLUSIVE, ancestors=self.ancestor_ids()
        )
        self.touched.add(obj)
        self._log_write(obj, key)
        old_value, existed = obj.put(key, value)
        self.undo.append(UndoRecord(obj, key, old_value, existed))

    def acquire_async(
        self,
        obj: AtomicObject,
        mode: LockMode,
        on_granted: "Callable[[], None]",
    ) -> bool:
        """Lock ``obj``, waiting if a competitor holds it.

        Returns ``True`` when the lock was granted immediately; otherwise
        the request queues and ``on_granted`` fires when the holder
        releases (competitive concurrency between CA actions).  Raises
        :class:`~repro.transactions.errors.DeadlockError` when waiting
        would close a cycle — callers typically turn that into an
        exception *raised within their CA action*, so recovery is
        coordinated rather than ad hoc.
        """
        self._require_active()
        return self.manager.locks.acquire(
            self.txn_id,
            obj.name,
            mode,
            wait=True,
            on_granted=on_granted,
            ancestors=self.ancestor_ids(),
        )

    def write_locked(self, obj: AtomicObject, key: Hashable, value: Any) -> None:
        """Write assuming the exclusive lock is already held (after a
        granted :meth:`acquire_async`)."""
        self._require_active()
        if not self.manager.locks.holds(self.txn_id, obj.name, LockMode.EXCLUSIVE):
            raise TransactionStateError(
                f"txn {self.txn_id} does not hold the X lock on {obj.name}"
            )
        self.touched.add(obj)
        self._log_write(obj, key)
        old_value, existed = obj.put(key, value)
        self.undo.append(UndoRecord(obj, key, old_value, existed))

    def read_locked(self, obj: AtomicObject, key: Hashable) -> Any:
        """Read assuming at least a shared lock is already held."""
        self._require_active()
        if not self.manager.locks.holds(self.txn_id, obj.name, LockMode.SHARED):
            raise TransactionStateError(
                f"txn {self.txn_id} does not hold a lock on {obj.name}"
            )
        self.touched.add(obj)
        return obj.get(key)

    # -- lifecycle ----------------------------------------------------------------

    def start_nested(self) -> "Transaction":
        """Start a nested transaction (the handler-visible ``start``)."""
        self._require_active()
        return self.manager.begin(parent=self)

    def prepare(self) -> None:
        """Durable point for 2PC-style participants: force the
        transaction's undo information to disk before voting yes.  A
        no-op without a WAL (pure in-memory transactions)."""
        self._require_active()
        self._require_children_settled()
        if self.manager.wal is not None:
            self.manager.wal.log_prepare(self.txn_id)

    def commit(self) -> None:
        """Commit this transaction.

        Nested: effects and locks are inherited by the parent.  Top-level:
        integrity invariants are checked (the atomic object "individually
        responsible for its own integrity"), versions bump, locks release.
        An invariant violation aborts the transaction and re-raises.
        """
        self._require_active()
        self._require_children_settled()
        if self.parent is not None:
            self.parent.undo.extend_from(self.undo)
            self.parent.touched.update(self.touched)
            self.manager.locks.transfer(self.txn_id, self.parent.txn_id)
            self.state = TxnState.COMMITTED
            if self.manager.wal is not None:
                self.manager.wal.log_commit(self.txn_id, top=False)
            return
        try:
            for obj in self.touched:
                obj.check_integrity()
        except Exception:
            self.abort()
            raise
        # The durable point: once the top-level commit record is forced,
        # a restart will never undo this tree's writes.
        if self.manager.wal is not None:
            self.manager.wal.log_commit(self.txn_id, top=True)
        for obj in self.touched:
            obj.version += 1
        self.state = TxnState.COMMITTED
        self.manager.locks.release_all(self.txn_id)
        self.manager._settle(self)

    def abort(self) -> None:
        """Abort: roll back own (and any active children's) effects."""
        if self.state is TxnState.ABORTED:
            return  # idempotent
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(f"cannot abort {self.state.value} txn")
        for child in self.children:
            if child.state is TxnState.ACTIVE:
                child.abort()
        self.undo.undo_all()
        self.state = TxnState.ABORTED
        self.manager.locks.release_all(self.txn_id)
        # Only after the rollback is fully applied: the abort record
        # tells replay this transaction needs no further undoing.
        if self.manager.wal is not None:
            self.manager.wal.log_abort(self.txn_id)
        self.manager._settle(self)

    # -- internals ---------------------------------------------------------------

    def _log_write(self, obj: AtomicObject, key: Hashable) -> None:
        """WAL rule: persistable undo info goes to the log *before* the
        in-place mutation."""
        wal = self.manager.wal
        if wal is not None:
            old_value, existed = obj.probe(key)
            wal.log_write(self.txn_id, obj.name, key, old_value, existed)

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"txn {self.txn_id} is {self.state.value}, not active"
            )

    def _require_children_settled(self) -> None:
        live = [c.txn_id for c in self.children if c.state is TxnState.ACTIVE]
        if live:
            raise TransactionStateError(
                f"txn {self.txn_id} cannot commit with active children {live}"
            )

    def __repr__(self) -> str:
        nested = f" parent={self.parent.txn_id}" if self.parent else ""
        return f"Transaction(#{self.txn_id} {self.state.value}{nested})"


class TransactionManager:
    """Creates transactions and owns the lock table.

    With a :class:`~repro.transactions.wal.WriteAheadLog` attached, every
    begin/write/prepare/commit/abort is also logged durably, so a node
    restart can reconstruct and undo whatever the crash cut short.
    """

    def __init__(self, wal: "WriteAheadLog | None" = None) -> None:
        self.locks = LockManager()
        self._ids = itertools.count(1)
        self.transactions: dict[int, Transaction] = {}
        self.wal = wal
        #: Top-level transaction trees pruned after settling (leak fix
        #: regression counter: long-running services settle millions).
        self.settled_trees = 0

    def begin(self, parent: Transaction | None = None) -> Transaction:
        """Start a new transaction (the handler-visible ``start``)."""
        txn = Transaction(self, next(self._ids), parent)
        if parent is not None:
            parent.children.append(txn)
        self.transactions[txn.txn_id] = txn
        if self.wal is not None:
            self.wal.log_begin(txn.txn_id, parent.txn_id if parent else None)
        return txn

    def active_count(self) -> int:
        return sum(
            1 for txn in self.transactions.values() if txn.state is TxnState.ACTIVE
        )

    def _settle(self, txn: Transaction) -> None:
        """Drop a settled *top-level* tree from the registry.

        Once the top level commits or aborts, no transaction in the tree
        can ever become active again (commit requires settled children;
        abort cascades), so keeping the tree alive is a pure memory leak
        under service-mode traffic.  Nested settles keep their records —
        the enclosing transaction may still need them (``children``,
        repro of Figure 2 flows) — and go away with the top level.
        """
        if txn.parent is not None:
            return
        stack = [txn]
        while stack:
            node = stack.pop()
            self.transactions.pop(node.txn_id, None)
            stack.extend(node.children)
        self.settled_trees += 1
