"""Transactional substrate for external atomic objects.

CA actions control shared external objects with "the associated transaction
mechanism that guarantees the ACID properties"; such objects "must be atomic
and individually responsible for their own integrity" (paper Section 3).
This package provides those atomic objects, a strict two-phase lock manager
with deadlock detection, undo logging, and nested transactions with the
explicit ``start`` / ``commit`` / ``abort`` operations that exception
handlers may call (Figure 2(a)) and that backward recovery calls implicitly
(Figure 2(b)).
"""

from repro.transactions.atomic_object import AtomicObject
from repro.transactions.durable import DurableStore
from repro.transactions.errors import (
    DeadlockError,
    LockConflictError,
    TransactionAborted,
    TransactionError,
    TransactionStateError,
)
from repro.transactions.locks import LockManager, LockMode
from repro.transactions.log import UndoLog, UndoRecord
from repro.transactions.manager import Transaction, TransactionManager, TxnState
from repro.transactions.wal import (
    WalError,
    WalRecovery,
    WalScan,
    WriteAheadLog,
    recover,
    replay_records,
    scan_wal,
)

__all__ = [
    "AtomicObject",
    "DeadlockError",
    "DurableStore",
    "LockConflictError",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionAborted",
    "TransactionError",
    "TransactionManager",
    "TransactionStateError",
    "TxnState",
    "UndoLog",
    "UndoRecord",
    "WalError",
    "WalRecovery",
    "WalScan",
    "WriteAheadLog",
    "recover",
    "replay_records",
    "scan_wal",
]
