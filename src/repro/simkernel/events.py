"""Events and the event queue.

Events are ordered by ``(time, priority, seq)``.  The sequence number is
assigned by the queue at insertion and guarantees a *deterministic* total
order even when many events share a timestamp — essential for reproducible
distributed-system runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

#: Default event priority.  Lower priorities run first at equal times.
PRIORITY_NORMAL = 0
#: Priority used for message deliveries so that, at equal times, deliveries
#: happen before locally scheduled work (mirrors "process messages having
#: arrived" in the paper's algorithm).
PRIORITY_DELIVERY = -1


@dataclass(order=True)
class Event:
    """A scheduled occurrence in virtual time.

    Attributes:
        time: virtual time at which the event fires.
        priority: tie-break rank at equal times (lower runs first).
        seq: insertion sequence number; final deterministic tie-break.
        action: zero-argument callable run when the event fires.
        label: human-readable tag used in traces and debugging.
        cancelled: a cancelled event stays in the heap but is skipped.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the simulator will skip it."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Insert an event and return it (so callers may cancel it)."""
        event = Event(
            time=time, priority=priority, seq=self._seq, action=action, label=label
        )
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
