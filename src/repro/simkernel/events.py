"""Events and the event queue.

Events are ordered by ``(time, priority, seq)``.  The sequence number is
assigned by the queue at insertion and guarantees a *deterministic* total
order even when many events share a timestamp — essential for reproducible
distributed-system runs.

Performance notes (the simulator's innermost loop lives here):

* Heap entries are plain ``(time, priority, seq, event)`` tuples, so heap
  sifting compares native tuples instead of calling a Python-level
  ``Event.__lt__`` — the single hottest comparison in large sweeps.
* ``Event`` is a ``__slots__`` class; no per-event ``__dict__``.
* The queue tracks live (non-cancelled) events with a counter, making
  ``__len__``/``__bool__`` O(1) instead of an O(heap) scan.
* Cancelled entries normally wait in the heap until popped; when they
  outnumber live ones past a threshold the heap is compacted in place,
  bounding memory in long runs with heavy timer cancellation (e.g. the
  reliable-delivery ACK timers of latency sweeps).

Tie-breaking policy
-------------------

The total order at equal ``(time, priority)`` is an explicit, documented
policy, not an accident of heap insertion:

* **Default (FIFO)**: events that share ``(time, priority)`` run in
  insertion order (ascending ``seq``).  This is the deterministic
  behaviour every sweep and benchmark relies on, bit-identical whether or
  not a tie-break policy object is installed.
* **Explorer-controlled**: a :class:`TieBreakPolicy` assigned to
  :attr:`EventQueue.tie_break` is consulted whenever more than one live
  event shares the minimal ``(time, priority)`` key — the *choice group*.
  The policy picks which group member runs next; the rest stay in the
  heap with their original sequence numbers, so declining to deviate
  reproduces FIFO exactly.  :mod:`repro.explore` uses this hook to
  enumerate message-delivery and same-timestamp event interleavings.

Events with *different* priorities are never permuted (deliveries keep
running before local work at equal times), so a policy cannot express
schedules the simulator's semantics forbid.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

#: Default event priority.  Lower priorities run first at equal times.
PRIORITY_NORMAL = 0
#: Priority used for message deliveries so that, at equal times, deliveries
#: happen before locally scheduled work (mirrors "process messages having
#: arrived" in the paper's algorithm).
PRIORITY_DELIVERY = -1


class Event:
    """A scheduled occurrence in virtual time.

    Attributes:
        time: virtual time at which the event fires.
        priority: tie-break rank at equal times (lower runs first).
        seq: insertion sequence number; final deterministic tie-break.
        action: callable run when the event fires.  Called with no
            arguments unless ``arg`` is set.
        arg: optional single argument passed to ``action``.  The network's
            delivery fast path stores the message here instead of closing
            over it — one slot write instead of a closure allocation per
            message.
        label: human-readable tag used in traces and debugging.
        cancelled: a cancelled event stays in the heap but is skipped.
    """

    __slots__ = (
        "time", "priority", "seq", "action", "arg", "label", "cancelled", "_queue"
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[..., Any],
        label: str = "",
        cancelled: bool = False,
        arg: Any = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.arg = arg
        self.label = label
        self.cancelled = cancelled
        self._queue: "EventQueue | None" = None

    def fire(self) -> Any:
        """Invoke the action (with ``arg`` when one was attached)."""
        if self.arg is None:
            return self.action()
        return self.action(self.arg)

    def cancel(self) -> None:
        """Mark this event so the simulator will skip it."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel()

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() == other.sort_key()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return (
            f"Event(t={self.time}, prio={self.priority}, seq={self.seq}, "
            f"label={self.label!r}{state})"
        )


class TieBreakPolicy:
    """Chooses which of several same-``(time, priority)`` events runs next.

    ``choose`` receives the live *choice group* sorted by insertion order
    (index 0 = the FIFO default) and returns the index to run; out-of-range
    answers fall back to 0.  ``on_execute`` observes *every* event the
    queue hands to the simulator (group of one included), in execution
    order — schedule recorders and partial-order reductions hook here.
    """

    def choose(self, candidates: Sequence[Event]) -> int:  # pragma: no cover
        return 0

    def on_execute(self, event: Event) -> None:  # pragma: no cover
        pass


class EventQueue:
    """A priority queue of :class:`Event` with deterministic ordering.

    Same-key ordering is governed by the tie-break policy documented in
    the module docstring: FIFO by insertion sequence unless a
    :class:`TieBreakPolicy` is installed on :attr:`tie_break`.
    """

    #: Compact only once at least this many cancelled entries are buried in
    #: the heap (avoids churn on small queues where an O(n) sweep per cancel
    #: would dominate).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        # Heap entries are (time, priority, seq, event): tuple comparison
        # never reaches the event because seq is unique.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._cancelled_in_heap = 0
        #: Optional :class:`TieBreakPolicy`; ``None`` keeps the FIFO fast
        #: path (bit-identical to the policy-free queue of earlier PRs).
        self.tie_break: TieBreakPolicy | None = None
        #: Delivery sink for *raw* heap entries.  The network claims this
        #: (first come, first served) and may then push entries whose
        #: fourth element is a plain payload instead of an :class:`Event`;
        #: the drain loops call ``message_sink(payload)`` for those.  Raw
        #: entries are uncancellable by construction (deliveries never
        #: cancel) and skip one Event allocation per message.
        self.message_sink: Callable[[Any], None] | None = None

    def _wrap_raw(self, entry: tuple) -> Event:
        """Materialize an :class:`Event` for a raw delivery entry.

        Only the non-fast paths (``step()``, controlled pops) see raw
        entries as events; the fast drain loop dispatches them directly.
        """
        event = Event(
            entry[0], entry[1], entry[2], self.message_sink, "deliver", False,
            entry[3],
        )
        return event

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical heap length, including not-yet-removed cancelled entries."""
        return len(self._heap)

    def push(
        self,
        time: float,
        action: Callable[..., Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
        arg: Any = None,
    ) -> Event:
        """Insert an event and return it (so callers may cancel it)."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, action, label, False, arg)
        event._queue = self
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def push_batch(
        self,
        items: Sequence[tuple[float, Callable[..., Any]]],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> list[Event]:
        """Insert many ``(time, action)`` timers in one pass.

        Sequence numbers are assigned in ``items`` order, so a batch is
        indistinguishable from the equivalent loop of :meth:`push` calls —
        same FIFO tie-breaks, same pop order.  For batches that are large
        relative to the heap the whole structure is rebuilt with one O(n)
        ``heapify`` instead of k × O(log n) sift-ups; small batches fall
        back to individual pushes.  Scenario generators use this to arm a
        whole workload's initial timers at once.
        """
        events: list[Event] = []
        seq = self._seq
        heap = self._heap
        batch = len(items)
        if batch * 4 >= len(heap) and batch > 4:
            for time, action in items:
                event = Event(time, priority, seq, action, label)
                event._queue = self
                heap.append((time, priority, seq, event))
                seq += 1
                events.append(event)
            heapq.heapify(heap)
        else:
            for time, action in items:
                event = Event(time, priority, seq, action, label)
                event._queue = self
                heapq.heappush(heap, (time, priority, seq, event))
                seq += 1
                events.append(event)
        self._seq = seq
        self._live += batch
        return events

    def pop(self) -> Event | None:
        """Remove and return the next live event, or ``None`` if empty."""
        if self.tie_break is not None:
            return self._pop_controlled()
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[3]
            if event.__class__ is not Event:
                self._live -= 1
                return self._wrap_raw(entry)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            # Detach so a late cancel() of an already-executed event cannot
            # corrupt the live counter.
            event._queue = None
            self._live -= 1
            return event
        return None

    def _pop_controlled(self) -> Event | None:
        """Pop under a tie-break policy.

        Collects the full choice group (all live events at the minimal
        ``(time, priority)``), lets the policy pick one, and pushes the
        rest back with their original heap entries — unchosen events keep
        their sequence numbers, so the FIFO order among them is preserved
        for later groups.
        """
        heap = self._heap
        first: tuple[float, int, int, Event] | None = None
        while heap:
            entry = heapq.heappop(heap)
            payload = entry[3]
            if payload.__class__ is not Event:
                entry = (entry[0], entry[1], entry[2], self._wrap_raw(entry))
            elif payload.cancelled:
                self._cancelled_in_heap -= 1
                continue
            first = entry
            break
        if first is None:
            return None
        time, priority = first[0], first[1]
        group = [first]
        while heap and heap[0][0] == time and heap[0][1] == priority:
            entry = heapq.heappop(heap)
            payload = entry[3]
            if payload.__class__ is not Event:
                entry = (entry[0], entry[1], entry[2], self._wrap_raw(entry))
            elif payload.cancelled:
                self._cancelled_in_heap -= 1
                continue
            group.append(entry)
        index = 0
        if len(group) > 1:
            try:
                index = self.tie_break.choose([entry[3] for entry in group])
            except BaseException:
                for entry in group:
                    heapq.heappush(heap, entry)
                raise
            if not 0 <= index < len(group):
                index = 0
        chosen = group.pop(index)
        for entry in group:
            heapq.heappush(heap, entry)
        event = chosen[3]
        event._queue = None
        self._live -= 1
        self.tie_break.on_execute(event)
        return event

    def peek_time(self) -> float | None:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].__class__ is Event and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        if not heap:
            return None
        return heap[0][0]

    # -- cancellation bookkeeping ---------------------------------------------

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for an event still in the heap."""
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        O(live) — called automatically once cancelled entries make up more
        than half of a sufficiently large heap, so the amortized cost per
        cancellation is O(1).
        """
        if not self._cancelled_in_heap:
            return
        # In place (not a rebind): the simulator's fast drain loop holds a
        # direct reference to this list across events.
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[3].__class__ is not Event or not entry[3].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
