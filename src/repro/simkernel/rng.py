"""Named, seeded random streams.

Every source of randomness in the simulation (per-channel latency, failure
injection, workload generation) draws from its own named stream so that
adding a new random consumer never perturbs the draws seen by existing ones.
Stream seeds are derived deterministically from the registry seed and the
stream name.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of independent, reproducible :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry with a seed based on ``name``.

        Useful for giving each scenario in a sweep its own registry while
        keeping the whole sweep a pure function of the top-level seed.
        """
        digest = hashlib.sha256(f"{self.seed}/fork/{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
