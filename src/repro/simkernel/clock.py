"""Virtual clock for the discrete-event simulator.

The clock only ever moves forward, and only the simulator advances it.
Keeping the clock as its own small object (rather than a bare float on the
simulator) lets substrates hold a reference to "the current time" without
holding a reference to the whole simulator.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonically non-decreasing virtual time, in abstract time units."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            ValueError: if ``time`` is earlier than the current time.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={time}"
            )
        self._now = time

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now})"
