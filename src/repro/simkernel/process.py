"""Generator-based simulated processes.

A :class:`SimProcess` wraps a Python generator that *yields* control-flow
commands to the simulator: ``Delay(t)`` suspends the process for ``t`` units
of virtual time, ``Stop()`` terminates it.  This gives workload scripts a
straight-line coding style while the kernel stays purely event-driven.

The CA-action behaviour engine (:mod:`repro.workloads.behaviour`) is
event-driven rather than generator-based — it needs cancellable,
resumable-at-a-different-point control flow that generators cannot
express — but SimProcess remains the right tool for straight-line
auxiliary processes (load generators, monitors) in examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.simkernel.scheduler import ScheduledHandle, Simulator


@dataclass(frozen=True)
class Delay:
    """Yield from a process generator to sleep ``duration`` virtual time."""

    duration: float


@dataclass(frozen=True)
class Stop:
    """Yield from a process generator to terminate the process."""


ProcessBody = Generator[object, None, None]


class SimProcess:
    """A resumable process running on the simulator.

    The process can be *interrupted*: the pending wake-up is cancelled and
    the generator is closed.  This models a participating object whose normal
    activity is taken over by an exception handler (the paper's termination
    model, Section 3.1).
    """

    def __init__(
        self,
        sim: Simulator,
        body: ProcessBody,
        name: str = "process",
        on_finish: Optional[Callable[[], None]] = None,
        on_command: Optional[Callable[[object], None]] = None,
    ) -> None:
        self._sim = sim
        self._body = body
        self.name = name
        self._on_finish = on_finish
        self._on_command = on_command
        self._pending: Optional[ScheduledHandle] = None
        self.finished = False
        self.interrupted = False

    def start(self, delay: float = 0.0) -> None:
        """Schedule the first resumption of the process."""
        self._pending = self._sim.schedule(delay, self._resume, label=self.name)

    def interrupt(self) -> None:
        """Stop the process: cancel wake-ups and close the generator."""
        if self.finished:
            return
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._body.close()
        self.interrupted = True
        self.finished = True

    @property
    def suspended(self) -> bool:
        """True while the process is waiting for an external resume."""
        return not self.finished and self._pending is None

    def resume_now(self) -> None:
        """Externally resume a process that yielded an unknown command.

        A behaviour engine may yield sentinel objects (e.g. "wait until the
        action completes") that the kernel does not interpret; the engine
        then calls :meth:`resume_now` when the condition holds.
        """
        if self.finished:
            raise RuntimeError(f"cannot resume finished process {self.name}")
        if self._pending is not None:
            raise RuntimeError(f"process {self.name} already has a pending resume")
        self._pending = self._sim.schedule(0.0, self._resume, label=self.name)

    def _resume(self) -> None:
        self._pending = None
        try:
            command = next(self._body)
        except StopIteration:
            self._finish()
            return
        if isinstance(command, Delay):
            if command.duration < 0:
                raise ValueError(f"negative delay in process {self.name}")
            self._pending = self._sim.schedule(
                command.duration, self._resume, label=self.name
            )
        elif isinstance(command, Stop):
            self._body.close()
            self._finish()
        else:
            # Unknown command: the process suspends until an external
            # controller calls resume_now().  The command is handed to the
            # controller via on_command (see repro.workloads.behaviour).
            if self._on_command is None:
                raise RuntimeError(
                    f"process {self.name} yielded {command!r} but has no "
                    "command handler"
                )
            self._on_command(command)

    def _finish(self) -> None:
        self.finished = True
        if self._on_finish is not None:
            self._on_finish()
