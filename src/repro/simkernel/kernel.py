"""The kernel seam: what a scheduler must provide to host the protocols.

Every protocol engine in this repo — the Section 4.2 algorithm, the
crash-tolerant / multicast / centralised variants, the CR baseline, the
network and its ARQ transport, the heartbeat detector — drives itself
through exactly four operations on ``runtime.sim``: read ``now``, arm a
timer with ``schedule``/``schedule_at`` (getting back a cancellable
handle), and ``run`` the event loop.  Nothing touches the event queue,
the virtual clock, or any other :class:`~repro.simkernel.scheduler.Simulator`
internals.

:class:`Kernel` names that seam.  Two implementations exist:

* :class:`~repro.simkernel.scheduler.Simulator` — the deterministic
  discrete-event kernel (virtual time, FIFO tie-breaks, bit-identical
  replays; what every experiment before PR 5 ran on);
* :class:`repro.rt.kernel.AsyncioKernel` — real wall-clock timers on an
  asyncio event loop (genuine concurrency: timer jitter, real latencies,
  optional TCP transport).

Variant runners construct their :class:`~repro.objects.runtime.Runtime`
internally, so a caller cannot thread a kernel through every signature.
Instead — exactly like the schedule explorer's
:func:`~repro.simkernel.scheduler.scheduling_policy` — a *factory* is
installed process-globally with :func:`kernel_backend` and every Runtime
built inside the ``with`` block adopts it::

    with kernel_backend(lambda: AsyncioKernel(time_scale=0.005)):
        result = run_crash_tolerant(5, raisers=2)   # real timers

Process-global and not thread-safe, matching the repo's process-based
parallelism (:func:`repro.workloads.parallel.parallel_map` workers each
install their own).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Protocol, runtime_checkable


@runtime_checkable
class KernelHandle(Protocol):
    """Handle to one scheduled action (cancellable timer)."""

    def cancel(self) -> None: ...

    @property
    def cancelled(self) -> bool: ...

    @property
    def time(self) -> float: ...


@runtime_checkable
class Kernel(Protocol):
    """The scheduler interface the protocol stack is written against."""

    @property
    def now(self) -> float:
        """Current time (virtual units; the kernel defines the clock)."""
        ...

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> KernelHandle:
        """Run ``action`` ``delay`` time units from now."""
        ...

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> KernelHandle:
        """Run ``action`` at absolute time ``time``."""
        ...

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run scheduled work until quiescent / ``until`` / budget."""
        ...


KernelFactory = Callable[[], Kernel]

#: Factory inherited by every Runtime constructed while it is installed.
#: ``None`` = the default deterministic Simulator.
_installed_factory: KernelFactory | None = None


def current_kernel_factory() -> KernelFactory | None:
    """The kernel factory new runtimes will pick up, if any."""
    return _installed_factory


@contextmanager
def kernel_backend(factory: KernelFactory | None) -> Iterator[KernelFactory | None]:
    """Install ``factory`` as the kernel for runtimes built in scope."""
    global _installed_factory
    previous = _installed_factory
    _installed_factory = factory
    try:
        yield factory
    finally:
        _installed_factory = previous
