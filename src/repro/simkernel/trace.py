"""Structured trace recorder.

Protocol engines and substrates record what happened as typed entries
``(time, category, subject, details)``.  Integration tests for the paper's
worked examples (Sections 4.3 and 3.3) assert on these traces, and the
benchmark harness prints them for EXPERIMENTS.md.

Recording granularity is controlled by :class:`TraceLevel`:

* ``FULL`` — every occurrence becomes a :class:`TraceEntry` (the default;
  what the worked-example integration tests rely on).
* ``COUNTS`` — no entries are allocated, but exact per-category counters
  are still maintained, so every message-count claim of the paper
  (Section 4.4's ``(N-1)(2P+3Q+1)`` and friends) remains verifiable at a
  fraction of the cost.  This is the fast path for large sweeps.
* ``OFF`` — nothing is recorded at all.

Per-category counters are maintained at every level except ``OFF``, so
``count("msg.send")`` agrees between ``FULL`` and ``COUNTS`` runs of the
same seeded scenario.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Any, Iterator


#: Flat-record field shape for the network's ``msg.send`` records.  The
#: shape is matched *by identity* in :attr:`TraceRecorder.entries`: for
#: these records the stored fourth value is the raw payload object, and the
#: ``action`` detail is extracted from it lazily at materialization — the
#: send path then skips a ``getattr`` per message.
SEND_SHAPE = ("dst", "kind", "id", "action")


class TraceLevel(enum.IntEnum):
    """How much a :class:`TraceRecorder` keeps."""

    OFF = 0
    COUNTS = 1
    FULL = 2


class TraceEntry:
    """One recorded occurrence.

    A ``__slots__`` class rather than a (frozen) dataclass: FULL-level runs
    allocate one per recorded occurrence, and the frozen-dataclass
    ``__init__`` (four ``object.__setattr__`` calls) was the single biggest
    line item of FULL tracing.  Treat instances as immutable.

    Attributes:
        time: virtual time of the occurrence.
        category: machine-friendly kind, e.g. ``"msg.send"``, ``"handler"``.
        subject: the acting entity, e.g. an object name.
        details: free-form payload describing the occurrence.
    """

    __slots__ = ("time", "category", "subject", "details")

    def __init__(
        self,
        time: float,
        category: str,
        subject: str,
        details: dict[str, Any] | None = None,
    ) -> None:
        self.time = time
        self.category = category
        self.subject = subject
        self.details = {} if details is None else details

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEntry):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.subject == other.subject
            and self.details == other.details
        )

    def __repr__(self) -> str:
        return (
            f"TraceEntry(time={self.time!r}, category={self.category!r}, "
            f"subject={self.subject!r}, details={self.details!r})"
        )

    def __str__(self) -> str:
        detail_str = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:10.3f}] {self.category:<22} {self.subject:<12} {detail_str}"


class TraceRecorder:
    """Append-only log of :class:`TraceEntry` with simple query helpers."""

    def __init__(self, level: TraceLevel = TraceLevel.FULL) -> None:
        self._entries: list[TraceEntry] = []
        #: Raw record tuples not yet materialized into :class:`TraceEntry`
        #: objects.  FULL-level hot paths append here (a tuple, not an
        #: object construction, per record); the :attr:`entries` getter
        #: converts lazily, so runs that never read their trace never pay
        #: for entry objects.  Two record shapes share the list:
        #:
        #: * ``(time, category, subject, details_dict)`` — the generic
        #:   :meth:`record` form;
        #: * ``(time, category, subject, field_names, v1, v2, ...)`` — the
        #:   *flat* form used by the densest sites (the network's
        #:   per-message entries): one tuple per record, with the interned
        #:   field-name tuple shared across records, so no dict is built
        #:   unless the entries are actually read.
        self._pending: list[tuple[Any, ...]] = []
        # Exact number of record() calls per category (any level but OFF).
        # At FULL the hot paths do not touch this directly: a pending
        # record's category is folded in lazily by the :attr:`counts`
        # property (``_counted`` = how many pending records are folded).
        self._counts: Counter[str] = Counter()
        self._counted = 0
        # Incremental per-query cache for by_category(): category ->
        # (matching entries, number of self.entries scanned so far).  The
        # log is append-only, so a cached result only ever needs extending.
        self._category_cache: dict[str, tuple[list[TraceEntry], int]] = {}
        self._full = False
        self._counting = False
        self.level = level

    # -- level management ------------------------------------------------------

    @property
    def level(self) -> TraceLevel:
        return self._level

    @level.setter
    def level(self, value: TraceLevel) -> None:
        self._level = TraceLevel(value)
        self._full = self._level is TraceLevel.FULL
        self._counting = self._level is not TraceLevel.OFF

    @property
    def counts(self) -> Counter[str]:
        """Exact per-category record() tallies (any level but ``OFF``).

        FULL-level hot paths only append to ``_pending``; the tallies for
        those records are folded in here, on first read.
        """
        pending = self._pending
        if pending:
            counted = self._counted
            total = len(pending)
            if counted < total:
                counts = self._counts
                for index in range(counted, total):
                    counts[pending[index][1]] += 1
                self._counted = total
        return self._counts

    @property
    def entries(self) -> list[TraceEntry]:
        """The entry log, materializing any lazily recorded entries.

        Returns the backing list itself (append-only semantics; callers may
        truncate it directly to reclaim memory — :meth:`by_category`
        tolerates shrinkage).
        """
        pending = self._pending
        if pending:
            self.counts  # fold pending tallies before the list is cleared
            append = self._entries.append
            for rec in pending:
                details = rec[3]
                if details.__class__ is tuple:
                    values = rec[4:]
                    if details is SEND_SHAPE:
                        # msg.send stores the payload itself; the action
                        # detail is derived here, off the hot path.
                        values = values[:3] + (
                            getattr(values[3], "action", None),
                        )
                    details = dict(zip(details, values))
                append(TraceEntry(rec[0], rec[1], rec[2], details))
            pending.clear()
            self._counted = 0
        return self._entries

    @entries.setter
    def entries(self, value: list[TraceEntry]) -> None:
        # Wholesale replacement of the log (tests wrap it to assert on
        # access patterns); pending raw records are dropped with the old
        # log's contents — but their tallies stay counted, as they would
        # have been under eager counting.
        self.counts
        self._pending.clear()
        self._counted = 0
        self._entries = value

    @property
    def enabled(self) -> bool:
        """Backwards-compatible on/off switch (pre-:class:`TraceLevel` API)."""
        return self._level is not TraceLevel.OFF

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.level = TraceLevel.FULL if value else TraceLevel.OFF

    # -- recording -------------------------------------------------------------

    def clear(self) -> None:
        """Drop all entries, counters and query caches.

        The supported way to reset a recorder mid-run (e.g. between
        campaign phases, or after toggling ``FULL -> COUNTS`` to reclaim
        entry memory): it keeps the incremental :meth:`by_category` cache
        coherent with the emptied log.
        """
        self._entries.clear()
        self._pending.clear()
        self._counts.clear()
        self._counted = 0
        self._category_cache.clear()

    def record(
        self, time: float, category: str, subject: str, **details: Any
    ) -> None:
        if self._full:
            self._pending.append((time, category, subject, details))
        elif self._counting:
            self._counts[category] += 1

    def tick(self, category: str) -> None:
        """Count an occurrence without entry payload (hot-path helper).

        Equivalent to :meth:`record` for counting purposes but skips detail
        construction entirely; callers on hot paths use it when
        ``wants_entries`` is false.
        """
        if self._counting:
            self._counts[category] += 1

    @property
    def wants_entries(self) -> bool:
        """True when callers should build full entry details (FULL level)."""
        return self._full

    # -- queries ---------------------------------------------------------------

    def count(self, category: str) -> int:
        """Exact occurrences of ``category`` (prefix-matched like
        :meth:`by_category`), maintained at ``FULL`` and ``COUNTS`` levels."""
        prefix = category + "."
        counts = self.counts  # folds pending tallies
        return sum(
            n
            for cat, n in counts.items()
            if cat == category or cat.startswith(prefix)
        )

    def by_category(self, category: str) -> list[TraceEntry]:
        """All entries whose category equals or starts with ``category``.

        Results are cached incrementally: repeated queries on a growing
        trace only scan entries appended since the previous call, instead
        of rescanning the whole log (integration tests query multi-
        thousand-entry traces repeatedly).
        """
        matches, scanned = self._category_cache.get(category, ([], 0))
        entries = self.entries
        if scanned > len(entries):
            # The log shrank under the cache — someone truncated
            # ``entries`` directly (e.g. reclaiming memory after dropping
            # to COUNTS mid-run) instead of calling :meth:`clear`.  The
            # incremental assumption is void; rescan from scratch.
            matches, scanned = [], 0
        if scanned < len(entries):
            prefix = category + "."
            matches = matches + [
                entry
                for entry in entries[scanned:]
                if entry.category == category or entry.category.startswith(prefix)
            ]
            self._category_cache[category] = (matches, len(entries))
        return list(matches)

    def by_subject(self, subject: str) -> list[TraceEntry]:
        return [entry for entry in self.entries if entry.subject == subject]

    def matching(self, **details: Any) -> list[TraceEntry]:
        """Entries whose details contain every given key/value pair."""
        return [
            entry
            for entry in self.entries
            if all(entry.details.get(k) == v for k, v in details.items())
        ]

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def dump(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(entry) for entry in self.entries)
