"""Structured trace recorder.

Protocol engines and substrates record what happened as typed entries
``(time, category, subject, details)``.  Integration tests for the paper's
worked examples (Sections 4.3 and 3.3) assert on these traces, and the
benchmark harness prints them for EXPERIMENTS.md.

Recording granularity is controlled by :class:`TraceLevel`:

* ``FULL`` — every occurrence becomes a :class:`TraceEntry` (the default;
  what the worked-example integration tests rely on).
* ``COUNTS`` — no entries are allocated, but exact per-category counters
  are still maintained, so every message-count claim of the paper
  (Section 4.4's ``(N-1)(2P+3Q+1)`` and friends) remains verifiable at a
  fraction of the cost.  This is the fast path for large sweeps.
* ``OFF`` — nothing is recorded at all.

Per-category counters are maintained at every level except ``OFF``, so
``count("msg.send")`` agrees between ``FULL`` and ``COUNTS`` runs of the
same seeded scenario.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator


class TraceLevel(enum.IntEnum):
    """How much a :class:`TraceRecorder` keeps."""

    OFF = 0
    COUNTS = 1
    FULL = 2


@dataclass(frozen=True)
class TraceEntry:
    """One recorded occurrence.

    Attributes:
        time: virtual time of the occurrence.
        category: machine-friendly kind, e.g. ``"msg.send"``, ``"handler"``.
        subject: the acting entity, e.g. an object name.
        details: free-form payload describing the occurrence.
    """

    time: float
    category: str
    subject: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail_str = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:10.3f}] {self.category:<22} {self.subject:<12} {detail_str}"


class TraceRecorder:
    """Append-only log of :class:`TraceEntry` with simple query helpers."""

    def __init__(self, level: TraceLevel = TraceLevel.FULL) -> None:
        self.entries: list[TraceEntry] = []
        #: Exact number of record() calls per category (any level but OFF).
        self.counts: Counter[str] = Counter()
        # Incremental per-query cache for by_category(): category ->
        # (matching entries, number of self.entries scanned so far).  The
        # log is append-only, so a cached result only ever needs extending.
        self._category_cache: dict[str, tuple[list[TraceEntry], int]] = {}
        self._full = False
        self._counting = False
        self.level = level

    # -- level management ------------------------------------------------------

    @property
    def level(self) -> TraceLevel:
        return self._level

    @level.setter
    def level(self, value: TraceLevel) -> None:
        self._level = TraceLevel(value)
        self._full = self._level is TraceLevel.FULL
        self._counting = self._level is not TraceLevel.OFF

    @property
    def enabled(self) -> bool:
        """Backwards-compatible on/off switch (pre-:class:`TraceLevel` API)."""
        return self._level is not TraceLevel.OFF

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.level = TraceLevel.FULL if value else TraceLevel.OFF

    # -- recording -------------------------------------------------------------

    def clear(self) -> None:
        """Drop all entries, counters and query caches.

        The supported way to reset a recorder mid-run (e.g. between
        campaign phases, or after toggling ``FULL -> COUNTS`` to reclaim
        entry memory): it keeps the incremental :meth:`by_category` cache
        coherent with the emptied log.
        """
        self.entries.clear()
        self.counts.clear()
        self._category_cache.clear()

    def record(
        self, time: float, category: str, subject: str, **details: Any
    ) -> None:
        if self._full:
            self.entries.append(TraceEntry(time, category, subject, details))
            self.counts[category] += 1
        elif self._counting:
            self.counts[category] += 1

    def tick(self, category: str) -> None:
        """Count an occurrence without entry payload (hot-path helper).

        Equivalent to :meth:`record` for counting purposes but skips detail
        construction entirely; callers on hot paths use it when
        ``wants_entries`` is false.
        """
        if self._counting:
            self.counts[category] += 1

    @property
    def wants_entries(self) -> bool:
        """True when callers should build full entry details (FULL level)."""
        return self._full

    # -- queries ---------------------------------------------------------------

    def count(self, category: str) -> int:
        """Exact occurrences of ``category`` (prefix-matched like
        :meth:`by_category`), maintained at ``FULL`` and ``COUNTS`` levels."""
        prefix = category + "."
        return sum(
            n
            for cat, n in self.counts.items()
            if cat == category or cat.startswith(prefix)
        )

    def by_category(self, category: str) -> list[TraceEntry]:
        """All entries whose category equals or starts with ``category``.

        Results are cached incrementally: repeated queries on a growing
        trace only scan entries appended since the previous call, instead
        of rescanning the whole log (integration tests query multi-
        thousand-entry traces repeatedly).
        """
        matches, scanned = self._category_cache.get(category, ([], 0))
        entries = self.entries
        if scanned > len(entries):
            # The log shrank under the cache — someone truncated
            # ``entries`` directly (e.g. reclaiming memory after dropping
            # to COUNTS mid-run) instead of calling :meth:`clear`.  The
            # incremental assumption is void; rescan from scratch.
            matches, scanned = [], 0
        if scanned < len(entries):
            prefix = category + "."
            matches = matches + [
                entry
                for entry in entries[scanned:]
                if entry.category == category or entry.category.startswith(prefix)
            ]
            self._category_cache[category] = (matches, len(entries))
        return list(matches)

    def by_subject(self, subject: str) -> list[TraceEntry]:
        return [entry for entry in self.entries if entry.subject == subject]

    def matching(self, **details: Any) -> list[TraceEntry]:
        """Entries whose details contain every given key/value pair."""
        return [
            entry
            for entry in self.entries
            if all(entry.details.get(k) == v for k, v in details.items())
        ]

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def dump(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(entry) for entry in self.entries)
