"""Structured trace recorder.

Protocol engines and substrates record what happened as typed entries
``(time, category, subject, details)``.  Integration tests for the paper's
worked examples (Sections 4.3 and 3.3) assert on these traces, and the
benchmark harness prints them for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceEntry:
    """One recorded occurrence.

    Attributes:
        time: virtual time of the occurrence.
        category: machine-friendly kind, e.g. ``"msg.send"``, ``"handler"``.
        subject: the acting entity, e.g. an object name.
        details: free-form payload describing the occurrence.
    """

    time: float
    category: str
    subject: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail_str = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:10.3f}] {self.category:<22} {self.subject:<12} {detail_str}"


class TraceRecorder:
    """Append-only log of :class:`TraceEntry` with simple query helpers."""

    def __init__(self) -> None:
        self.entries: list[TraceEntry] = []
        self.enabled = True

    def record(
        self, time: float, category: str, subject: str, **details: Any
    ) -> None:
        if not self.enabled:
            return
        self.entries.append(TraceEntry(time, category, subject, details))

    def by_category(self, category: str) -> list[TraceEntry]:
        """All entries whose category equals or starts with ``category``."""
        prefix = category + "."
        return [
            entry
            for entry in self.entries
            if entry.category == category or entry.category.startswith(prefix)
        ]

    def by_subject(self, subject: str) -> list[TraceEntry]:
        return [entry for entry in self.entries if entry.subject == subject]

    def matching(self, **details: Any) -> list[TraceEntry]:
        """Entries whose details contain every given key/value pair."""
        return [
            entry
            for entry in self.entries
            if all(entry.details.get(k) == v for k, v in details.items())
        ]

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def dump(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(entry) for entry in self.entries)
