"""The simulator loop.

:class:`Simulator` owns the clock and the event queue and runs events in
deterministic order.  Everything else in the reproduction — channels, nodes,
objects, protocol engines — schedules work through it.
"""

from __future__ import annotations

import gc
import heapq
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.simkernel.clock import VirtualClock
from repro.simkernel.events import PRIORITY_NORMAL, Event, EventQueue, TieBreakPolicy


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (negative delays, re-running...)."""


#: Tie-break policy inherited by every Simulator constructed while it is
#: installed (see :func:`scheduling_policy`).  ``None`` = FIFO fast path.
_installed_policy: TieBreakPolicy | None = None


def current_scheduling_policy() -> TieBreakPolicy | None:
    """The tie-break policy new simulators will pick up, if any."""
    return _installed_policy


@contextmanager
def scheduling_policy(policy: TieBreakPolicy | None) -> Iterator[TieBreakPolicy | None]:
    """Install ``policy`` as the tie-break for simulators built in scope.

    Variant runners construct their :class:`~repro.objects.runtime.Runtime`
    (and thus their :class:`Simulator`) internally, so the schedule
    explorer cannot thread a policy through every call signature; instead
    it installs one here and any simulator created inside the ``with``
    block adopts it.  Process-global and not thread-safe — exploration
    parallelism in this repo is process-based (``parallel_map``), where
    each worker installs its own policy.
    """
    global _installed_policy
    previous = _installed_policy
    _installed_policy = policy
    try:
        yield policy
    finally:
        _installed_policy = previous


@dataclass
class ScheduledHandle:
    """Handle to a scheduled event, allowing cancellation."""

    event: Event

    def cancel(self) -> None:
        self.event.cancel()

    @property
    def cancelled(self) -> bool:
        return self.event.cancelled

    @property
    def time(self) -> float:
        return self.event.time


class Simulator:
    """Deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self._queue = EventQueue()
        self._queue.tie_break = _installed_policy
        self._events_executed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        # Reads the clock's backing field directly: this property is the
        # single most-called accessor in a run, and the extra property hop
        # through VirtualClock.now is measurable in large sweeps.
        return self.clock._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for budget checks in tests)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> ScheduledHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        event = self._queue.push(self.now + delay, action, priority, label)
        return ScheduledHandle(event)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> ScheduledHandle:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: now={self.now}, time={time}"
            )
        event = self._queue.push(time, action, priority, label)
        return ScheduledHandle(event)

    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._events_executed += 1
        event.fire()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the
        ``max_events`` budget is exhausted.

        Args:
            until: stop once the next event would fire after this time.  The
                clock is advanced to ``until`` when given.
            max_events: safety budget; raises :class:`SimulationError` when
                exceeded (catches accidental protocol livelock in tests).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # Pause the cyclic GC for the drain: event handlers allocate heavily
        # (messages, trace entries) and the allocation-count heuristic
        # triggers collections mid-run that find almost nothing to free.
        # Runs are bounded (an event budget or a drained queue), so true
        # cycles are reclaimed at the collection re-enabled here.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self._queue.tie_break is None:
                self._run_fast(until, max_events)
            else:
                self._run_controlled(until, max_events)
            if until is not None and until > self.now:
                self.clock.advance_to(until)
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False

    def _run_fast(self, until: float | None, max_events: int | None) -> None:
        """Drain loop for the FIFO (no tie-break policy) case.

        Works on the heap directly: the per-event costs of the generic
        loop — a ``step()`` call, a ``pop()`` call, an emptiness check, a
        monotonicity-checked ``advance_to`` and the attribute hops behind
        each — are all folded into one tight ``while``.  Pop order, budget
        semantics and the observable state after an exhausted budget (next
        event still queued) are identical to the generic loop; on this box
        the fold alone is worth ~1.4× on COUNTS sweeps.
        """
        queue = self._queue
        heap = queue._heap
        clock = self.clock
        heappop = heapq.heappop
        sink = queue.message_sink
        # Fold the optional bounds into always-comparable sentinels: one
        # comparison per event instead of a None test plus a comparison.
        limit = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        executed = 0
        try:
            while heap:
                entry = heappop(heap)
                event = entry[3]
                if event.__class__ is Event and event.cancelled:
                    queue._cancelled_in_heap -= 1
                    continue
                time = entry[0]
                if time > limit:
                    heapq.heappush(heap, entry)
                    break
                if executed >= budget:
                    heapq.heappush(heap, entry)
                    raise SimulationError(
                        f"event budget exhausted after {executed} events at "
                        f"t={clock._now}; likely livelock"
                    )
                queue._live -= 1
                # Heap pops are non-decreasing in time and pushes are
                # validated against the clock, so the monotonicity check of
                # advance_to is redundant here.
                clock._now = time
                executed += 1
                if event.__class__ is not Event:
                    # Raw delivery entry (see Network.send): the payload is
                    # the message itself, dispatched straight to the sink —
                    # no Event was ever allocated for it.  The fallback read
                    # covers a sink claimed after this loop hoisted it (a
                    # network constructed mid-run).
                    (sink or queue.message_sink)(event)
                    continue
                event._queue = None
                arg = event.arg
                if arg is None:
                    event.action()
                else:
                    event.action(arg)
        finally:
            self._events_executed += executed

    def _run_controlled(self, until: float | None, max_events: int | None) -> None:
        """Generic loop: every pop goes through the tie-break policy."""
        executed = 0
        while True:
            if until is None:
                if not self._queue:
                    break
            else:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > until:
                    break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {executed} events at "
                    f"t={self.now}; likely livelock"
                )
            self.step()
            executed += 1
