"""The simulator loop.

:class:`Simulator` owns the clock and the event queue and runs events in
deterministic order.  Everything else in the reproduction — channels, nodes,
objects, protocol engines — schedules work through it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.simkernel.clock import VirtualClock
from repro.simkernel.events import PRIORITY_NORMAL, Event, EventQueue, TieBreakPolicy


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (negative delays, re-running...)."""


#: Tie-break policy inherited by every Simulator constructed while it is
#: installed (see :func:`scheduling_policy`).  ``None`` = FIFO fast path.
_installed_policy: TieBreakPolicy | None = None


def current_scheduling_policy() -> TieBreakPolicy | None:
    """The tie-break policy new simulators will pick up, if any."""
    return _installed_policy


@contextmanager
def scheduling_policy(policy: TieBreakPolicy | None) -> Iterator[TieBreakPolicy | None]:
    """Install ``policy`` as the tie-break for simulators built in scope.

    Variant runners construct their :class:`~repro.objects.runtime.Runtime`
    (and thus their :class:`Simulator`) internally, so the schedule
    explorer cannot thread a policy through every call signature; instead
    it installs one here and any simulator created inside the ``with``
    block adopts it.  Process-global and not thread-safe — exploration
    parallelism in this repo is process-based (``parallel_map``), where
    each worker installs its own policy.
    """
    global _installed_policy
    previous = _installed_policy
    _installed_policy = policy
    try:
        yield policy
    finally:
        _installed_policy = previous


@dataclass
class ScheduledHandle:
    """Handle to a scheduled event, allowing cancellation."""

    event: Event

    def cancel(self) -> None:
        self.event.cancel()

    @property
    def cancelled(self) -> bool:
        return self.event.cancelled

    @property
    def time(self) -> float:
        return self.event.time


class Simulator:
    """Deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self._queue = EventQueue()
        self._queue.tie_break = _installed_policy
        self._events_executed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        # Reads the clock's backing field directly: this property is the
        # single most-called accessor in a run, and the extra property hop
        # through VirtualClock.now is measurable in large sweeps.
        return self.clock._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for budget checks in tests)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> ScheduledHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        event = self._queue.push(self.now + delay, action, priority, label)
        return ScheduledHandle(event)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> ScheduledHandle:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: now={self.now}, time={time}"
            )
        event = self._queue.push(time, action, priority, label)
        return ScheduledHandle(event)

    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._events_executed += 1
        event.action()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the
        ``max_events`` budget is exhausted.

        Args:
            until: stop once the next event would fire after this time.  The
                clock is advanced to ``until`` when given.
            max_events: safety budget; raises :class:`SimulationError` when
                exceeded (catches accidental protocol livelock in tests).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while True:
                if until is None:
                    # O(1) emptiness check; step() pops directly without a
                    # separate peek pass over the heap.
                    if not self._queue:
                        break
                else:
                    next_time = self._queue.peek_time()
                    if next_time is None or next_time > until:
                        break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"event budget exhausted after {executed} events at "
                        f"t={self.now}; likely livelock"
                    )
                self.step()
                executed += 1
            if until is not None and until > self.now:
                self.clock.advance_to(until)
        finally:
            self._running = False
