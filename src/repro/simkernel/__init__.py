"""Deterministic discrete-event simulation kernel.

This package provides the virtual-time substrate on which the distributed
system is simulated: an event queue with deterministic tie-breaking, a
simulator loop, generator-based simulated processes, named seeded random
streams and a structured trace recorder.

The kernel is intentionally single-threaded: all concurrency in the
reproduction is *simulated* concurrency, which makes every run reproducible
and makes message counting exact (see DESIGN.md, "Key design decisions").
The protocol stack only ever touches the :class:`Kernel` seam
(:mod:`repro.simkernel.kernel`), so the same state machines also run on
the real-concurrency asyncio backend in :mod:`repro.rt`.
"""

from repro.simkernel.clock import VirtualClock
from repro.simkernel.events import Event, EventQueue
from repro.simkernel.kernel import (
    Kernel,
    KernelHandle,
    current_kernel_factory,
    kernel_backend,
)
from repro.simkernel.process import Delay, SimProcess, Stop
from repro.simkernel.rng import RngRegistry
from repro.simkernel.scheduler import ScheduledHandle, Simulator
from repro.simkernel.trace import TraceEntry, TraceLevel, TraceRecorder

__all__ = [
    "Delay",
    "Event",
    "EventQueue",
    "Kernel",
    "KernelHandle",
    "current_kernel_factory",
    "kernel_backend",
    "RngRegistry",
    "ScheduledHandle",
    "SimProcess",
    "Simulator",
    "Stop",
    "TraceEntry",
    "TraceLevel",
    "TraceRecorder",
    "VirtualClock",
]
