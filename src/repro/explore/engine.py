"""The exploration engine: DFS, random walks, delay-bounded search.

All three drivers execute *whole runs*: the simkernel is deterministic
given the choice vector, so re-running a prefix reproduces it exactly
(stateless model checking — no snapshot/restore needed).  A "run" is one
campaign cell executed under a :class:`ScheduleController`, observed by
the PR-2 campaign observers and judged by the shared invariant oracles
plus the order-invariance oracle: *every* interleaving of a cell must
produce the FIFO baseline's digest (resolved-exception map, classification
and — fault-free — the exact message count).

DFS reductions (mode ``dfs``):

* **Sleep sets** (Godefroid): after exploring branch ``c`` at a node, a
  sibling branch's subtree need not re-explore interleavings that start
  with ``c`` again; ``c`` "sleeps" until a dependent event executes.  A
  node whose every eligible candidate sleeps is redundant and the run is
  pruned.
* **Canonical-history pruning**: each executed prefix is folded into a
  Foata-normal-form hash over the label-derived dependence relation
  (:mod:`repro.explore.independence`).  Equal hash ⇒ the prefixes are
  permutations of one another through independent swaps ⇒ (determinism)
  the reached states are oracle-equivalent, so a revisited state's
  subtree is skipped — *unless* it is revisited with a smaller sleep set
  than before (the classic sleep-set/state-caching interaction: a larger
  explored-from sleep set covers fewer continuations, so we only prune
  when a previous visit's sleep set was a subset of the current one).

Both reductions can be disabled (``por=False``) — the cross-validation
tests compare the reduced and unreduced digest sets on tiny shapes.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.explore.controller import PruneRun, ScheduleController
from repro.explore.independence import EventMeta, event_meta, independent
from repro.explore.schedule import ScheduleSpec
from repro.explore.shrink import ddmin
from repro.net.message import reset_msg_ids
from repro.simkernel.scheduler import scheduling_policy
from repro.workloads.campaigns import (
    BAD,
    RAISE_AT,
    CampaignCell,
    classify_observation,
    observe_cell,
    parse_cell_id,
)

#: Choice points are only opened inside this virtual-time window: before
#: it the system is quiescent start-up chatter (heartbeats, which commute;
#: see the independence module), after it resolution has long settled.
#: The window is part of every certified bound reported by the explorer.
DEFAULT_WINDOW = (RAISE_AT - 0.5, RAISE_AT + 60.0)


# -- single runs -------------------------------------------------------------------


@dataclass(frozen=True)
class RunOutcome:
    """Oracle-visible result of one scheduled run (picklable)."""

    cell_id: str
    schedule: str
    classification: str
    violations: tuple[str, ...]
    #: (classification, sorted handled map, fault-free message count) —
    #: the order-invariance oracle compares this across interleavings.
    digest: tuple
    choice_points: int
    truncated_points: int
    #: sha256 of the full trace log — bit-identical replay check.
    trace_hash: str

    @property
    def bad(self) -> bool:
        return self.classification in BAD


def _digest(cell: CampaignCell, classification: str, obs) -> tuple:
    handled = tuple(sorted(obs.handled.items()))
    measured = obs.measured if cell.fault == "none" else None
    return (classification, handled, measured)


def _trace_hash(runtime) -> str:
    if runtime is None:
        return ""
    return hashlib.sha256(runtime.trace.dump().encode()).hexdigest()[:16]


def _run(
    cell: CampaignCell,
    spec: Optional[ScheduleSpec] = None,
    window: Optional[tuple[float, float]] = DEFAULT_WINDOW,
    max_choice_points: Optional[int] = None,
    on_choice=None,
    on_event=None,
):
    """Execute one cell under a controller; returns (outcome, controller, runtime)."""
    controller = ScheduleController(
        spec, window=window, max_choice_points=max_choice_points,
        on_choice=on_choice, on_event=on_event,
    )
    reset_msg_ids()  # per-run ids => bit-identical traces on replay
    with scheduling_policy(controller):
        obs = observe_cell(cell)
    classification, violations = classify_observation(cell, obs)
    outcome = RunOutcome(
        cell_id=cell.cell_id,
        schedule=(spec or ScheduleSpec.fifo()).encode(),
        classification=classification,
        violations=violations,
        digest=_digest(cell, classification, obs),
        choice_points=controller.pos,
        truncated_points=controller.truncated_points,
        trace_hash=_trace_hash(obs.runtime),
    )
    return outcome, controller, obs.runtime


def run_digest(
    cell: Union[CampaignCell, str],
    spec: Union[ScheduleSpec, str, None] = None,
    window: Optional[tuple[float, float]] = DEFAULT_WINDOW,
    max_choice_points: Optional[int] = None,
) -> RunOutcome:
    """Run one cell under one schedule and return its :class:`RunOutcome`."""
    if isinstance(cell, str):
        cell = parse_cell_id(cell)
    if isinstance(spec, str):
        spec = ScheduleSpec.parse(spec)
    outcome, _, _ = _run(
        cell, spec, window=window, max_choice_points=max_choice_points
    )
    return outcome


def replay_cell(item: tuple[str, str]) -> RunOutcome:
    """``(cell_id, schedule string) -> RunOutcome`` — the picklable
    module-level entry point for :func:`repro.workloads.parallel.parallel_map`
    fan-out (process pools require a top-level function)."""
    cell_id, schedule = item
    return run_digest(cell_id, schedule)


# -- DFS with sleep sets and canonical-history pruning ------------------------------


class UnsoundReduction(RuntimeError):
    """A handler spawned a same-instant event after a group collapse.

    The pairwise-independent-group collapse assumes no handler schedules
    new work at the *current* ``(time, priority)`` (audited true for the
    paper-family protocols — all delays are strictly positive).  The DFS
    guards the assumption at runtime; if it ever breaks, the whole DFS is
    restarted with the collapse disabled instead of silently missing
    interleavings.
    """


@dataclass
class _Frame:
    """One node on the current DFS path."""

    chosen: int
    tried: set = field(default_factory=set)
    eligible: tuple[int, ...] = ()
    entry_asleep: frozenset = frozenset()
    #: True for a pairwise-independent group taken without branching —
    #: replays must re-arm the same-instant spawn guard for it.
    collapsed: bool = False


def _pairwise_independent(metas: Sequence[EventMeta]) -> bool:
    for i in range(len(metas)):
        for j in range(i + 1, len(metas)):
            if not independent(metas[i], metas[j]):
                return False
    return True


class _DfsDriver:
    """Per-cell DFS state machine fed by the controller hooks."""

    def __init__(self, por: bool = True, collapse: bool = True) -> None:
        self.por = por
        self.collapse = collapse and por
        self.frames: list[_Frame] = []
        #: canonical-history hash -> sleep-label-sets it was explored with.
        self.visited: dict[int, list[frozenset]] = {}
        self.pruned_sleep = 0
        self.pruned_state = 0
        self.max_depth_seen = 0
        self.collapsed_groups = 0

    def begin_run(self) -> None:
        self.depth = 0
        self.sleep: list[EventMeta] = []
        self._last_level: dict[str, int] = {}
        self._label_counts: dict[str, int] = {}
        self._floor = 0
        self._max_level = 0
        self._hash = 0
        # Spawn guard for the group collapse: the not-yet-executed label
        # counts of the last choice group, keyed by its instant.
        self._instant: Optional[tuple[float, int]] = None
        self._instant_rest: dict[str, int] = {}
        self._instant_shortcut = False

    # -- controller hooks ------------------------------------------------------

    def on_event(self, meta: EventMeta, time: float, priority: int) -> None:
        if self._instant == (time, priority):
            rest = self._instant_rest.get(meta.label, 0)
            if rest > 0:
                self._instant_rest[meta.label] = rest - 1
            elif self._instant_shortcut:
                raise UnsoundReduction(
                    f"event {meta.label!r} joined instant "
                    f"{self._instant} after a collapsed choice group"
                )
        if self.sleep:
            self.sleep = [m for m in self.sleep if independent(m, meta)]
        label = meta.label
        occurrence = self._label_counts.get(label, 0)
        self._label_counts[label] = occurrence + 1
        touched = meta.touched
        if touched is None:
            # Unknown footprint: dependent with everything — a fence in
            # the Foata level structure.
            level = self._max_level + 1
            self._floor = level
        else:
            base = self._floor
            for obj in touched:
                known = self._last_level.get(obj, 0)
                if known > base:
                    base = known
            level = base + 1
            for obj in touched:
                self._last_level[obj] = level
        if level > self._max_level:
            self._max_level = level
        self._hash ^= hash((level, label, occurrence))

    def on_choice(
        self,
        pos: int,
        metas: list[EventMeta],
        eligible: list[int],
        time: float,
        priority: int,
    ) -> int:
        depth = self.depth
        self.depth += 1
        if depth > self.max_depth_seen:
            self.max_depth_seen = depth
        key = (time, priority)
        if self._instant == key:
            if self._instant_shortcut:
                for meta in metas:
                    if self._instant_rest.get(meta.label, 0) <= 0:
                        raise UnsoundReduction(
                            f"event {meta.label!r} joined instant {key} "
                            "after a collapsed choice group"
                        )
        else:
            self._instant = key
            self._instant_shortcut = False
        rest: dict[str, int] = {}
        for meta in metas:
            rest[meta.label] = rest.get(meta.label, 0) + 1
        self._instant_rest = rest
        if depth < len(self.frames):
            # Prescribed prefix: replay the branch, re-deriving the child
            # sleep set from previously explored siblings.
            frame = self.frames[depth]
            if frame.collapsed:
                self._instant_shortcut = True
            chosen = frame.chosen
            chosen_meta = metas[chosen]
            merged = self.sleep + [
                metas[i] for i in frame.tried if i != chosen
            ]
            self.sleep = [m for m in merged if independent(m, chosen_meta)]
            return chosen
        # Frontier node.
        sleep_labels = frozenset(m.label for m in self.sleep)
        if self.por:
            stored = self.visited.get(self._hash)
            if stored is not None and any(
                previous <= sleep_labels for previous in stored
            ):
                self.pruned_state += 1
                raise PruneRun()
            if stored is None:
                self.visited[self._hash] = [sleep_labels]
            else:
                stored[:] = [s for s in stored if not (sleep_labels <= s)]
                stored.append(sleep_labels)
            asleep = frozenset(
                i for i in eligible if metas[i].label in sleep_labels
            )
        else:
            asleep = frozenset()
        candidates = [i for i in eligible if i not in asleep]
        if not candidates:
            self.pruned_sleep += 1
            raise PruneRun()
        # Group collapse: when every pair of events in the group is
        # independent, all linearizations form a single Mazurkiewicz
        # trace — provided no handler injects a *new* same-instant event
        # (which could be dependent with a deferred member).  That premise
        # is audited for the paper-family protocols (no zero-delay
        # scheduling from handlers) and enforced at runtime by the spawn
        # guard; violation restarts the DFS without the collapse.
        if (
            self.collapse
            and len(metas) > 1
            and not any(m.label in sleep_labels for m in metas)
            and _pairwise_independent(metas)
        ):
            chosen = candidates[0]
            self.collapsed_groups += 1
            self._instant_shortcut = True
            self.frames.append(
                _Frame(chosen, {chosen}, (), frozenset(), collapsed=True)
            )
            chosen_meta = metas[chosen]
            self.sleep = [
                m for m in self.sleep if independent(m, chosen_meta)
            ]
            return chosen
        # Ample-set reduction: a *commuting* event (heartbeat delivery —
        # refreshes ``last_seen`` and spawns nothing) commutes with every
        # other event, so running it first vs. later in the same instant
        # yields trace-equivalent executions.  Branch only over the
        # non-commuting candidates; if all candidates commute, take FIFO
        # without opening a backtrackable branch at all.  This collapses
        # the heartbeat chatter that otherwise dominates the tree.
        branchable = tuple(
            i for i in candidates if not metas[i].commuting
        )
        chosen = branchable[0] if branchable else candidates[0]
        self.frames.append(_Frame(chosen, {chosen}, branchable, asleep))
        chosen_meta = metas[chosen]
        self.sleep = [m for m in self.sleep if independent(m, chosen_meta)]
        return chosen

    # -- search control --------------------------------------------------------

    def backtrack(self) -> bool:
        """Advance the deepest frame to its next unexplored branch."""
        while self.frames:
            frame = self.frames[-1]
            untried = next(
                (
                    i
                    for i in frame.eligible
                    if i not in frame.tried and i not in frame.entry_asleep
                ),
                None,
            )
            if untried is None:
                self.frames.pop()
                continue
            frame.chosen = untried
            frame.tried.add(untried)
            return True
        return False


# -- findings ----------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One confirmed order-sensitivity, minimized and reproducible."""

    cell_id: str
    schedule: str
    minimized: str
    classification: str
    violations: tuple[str, ...]
    digest: tuple
    baseline_digest: tuple
    occurrences: int = 1

    def repro_command(self) -> str:
        return (
            "PYTHONPATH=src python -m repro explore "
            f"--cell '{self.cell_id}' --schedule '{self.minimized}'"
        )

    def to_payload(self) -> dict:
        return {
            "cell": self.cell_id,
            "schedule": self.schedule,
            "minimized": self.minimized,
            "classification": self.classification,
            "violations": list(self.violations),
            "digest": repr(self.digest),
            "baseline_digest": repr(self.baseline_digest),
            "occurrences": self.occurrences,
            "repro": self.repro_command(),
        }


def _diverges(outcome: RunOutcome, baseline: RunOutcome) -> bool:
    return outcome.bad or outcome.digest != baseline.digest


def _minimise(
    cell: CampaignCell,
    window,
    baseline: RunOutcome,
    deviations: Sequence[tuple[int, int]],
    budget: int = 150,
) -> ScheduleSpec:
    """ddmin the deviation set down to a minimal failing schedule."""

    def failing(subset) -> bool:
        try:
            outcome, _, _ = _run(
                cell, ScheduleSpec.from_choices(subset), window=window
            )
        except Exception:  # noqa: BLE001 - a crashing subset still "fails"
            return True
        return _diverges(outcome, baseline)

    minimal = ddmin(list(deviations), failing, budget=budget)
    return ScheduleSpec.from_choices(minimal)


# -- exploration result -------------------------------------------------------------


@dataclass
class ExploreResult:
    """Outcome of exploring one cell's schedule space."""

    cell: CampaignCell
    mode: str
    window: Optional[tuple[float, float]]
    baseline: RunOutcome
    schedules_run: int = 0
    pruned: int = 0
    distinct_digests: int = 1
    #: Every distinct run digest observed — with ``por=False`` vs
    #: ``por=True`` on the same cell these sets must coincide, which is
    #: the testable statement of reduction soundness.
    digests: frozenset = frozenset()
    findings: list[Finding] = field(default_factory=list)
    #: True when the DFS drained the whole (windowed) choice tree within
    #: its budgets — the certified-bound claim for clean variants.
    exhaustive: bool = False
    #: True when the search stopped because ``max_runs`` bit — distinct
    #: from window truncation, and the loud "this bound certified
    #: nothing" signal benchmarks must not bury in an ``ok`` run.
    budget_exhausted: bool = False
    elapsed_s: float = 0.0
    bounds: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.baseline.bad

    def schedules_per_minute(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return 60.0 * (self.schedules_run + self.pruned) / self.elapsed_s

    def to_payload(self) -> dict:
        return {
            "cell": self.cell.cell_id,
            "mode": self.mode,
            "window": list(self.window) if self.window else None,
            "ok": self.ok,
            "baseline_classification": self.baseline.classification,
            "baseline_digest": repr(self.baseline.digest),
            "schedules_run": self.schedules_run,
            "pruned": self.pruned,
            "distinct_digests": self.distinct_digests,
            "exhaustive": self.exhaustive,
            "budget_exhausted": self.budget_exhausted,
            "elapsed_s": round(self.elapsed_s, 3),
            "schedules_per_minute": round(self.schedules_per_minute(), 1),
            "bounds": self.bounds,
            "findings": [finding.to_payload() for finding in self.findings],
        }


def _record_finding(
    findings: dict,
    cell: CampaignCell,
    window,
    baseline: RunOutcome,
    outcome: RunOutcome,
    controller: ScheduleController,
    minimize: bool,
    shrink_budget: int,
) -> None:
    key = outcome.digest
    if key in findings:
        existing = findings[key]
        findings[key] = Finding(
            **{**existing.__dict__, "occurrences": existing.occurrences + 1}
        )
        return
    recorded = controller.recorded_spec()
    minimized = recorded
    if minimize and recorded.choices:
        minimized = _minimise(
            cell, window, baseline, recorded.choices, budget=shrink_budget
        )
    findings[key] = Finding(
        cell_id=cell.cell_id,
        schedule=outcome.schedule,
        minimized=minimized.encode(),
        classification=outcome.classification,
        violations=outcome.violations,
        digest=outcome.digest,
        baseline_digest=baseline.digest,
    )


# -- drivers -----------------------------------------------------------------------


def explore_cell(
    cell: Union[CampaignCell, str],
    mode: str = "dfs",
    schedules: int = 200,
    seed: int = 0,
    bound: int = 2,
    max_runs: int = 5000,
    max_choice_points: int = 400,
    window: Optional[tuple[float, float]] = DEFAULT_WINDOW,
    por: bool = True,
    minimize: bool = True,
    shrink_budget: int = 150,
) -> ExploreResult:
    """Explore one cell's schedule space.

    ``mode``:

    * ``dfs`` — bounded-exhaustive DFS with partial-order reduction
      (``por=False`` disables sleep sets + state pruning for
      cross-validation).  ``max_runs`` bounds executions, and
      ``max_choice_points`` bounds in-window choice depth; the result is
      ``exhaustive`` only if neither bound bit.
    * ``random`` — ``schedules`` seeded random walks ``rw:<seed>``,
      ``rw:<seed+1>``, ...
    * ``delay`` — all schedules with at most ``bound`` deviations from
      FIFO, deviation positions increasing (CHESS-style delay bounding),
      capped by ``max_runs``.
    """
    if isinstance(cell, str):
        cell = parse_cell_id(cell)
    started = time.perf_counter()
    baseline, base_controller, _ = _run(
        cell, None, window=window, max_choice_points=max_choice_points
    )
    findings: dict = {}
    digests = {baseline.digest}
    schedules_run = 1
    pruned = 0
    exhaustive = False
    budget_exhausted = False
    truncated = baseline.truncated_points > 0

    if mode == "dfs":
        for collapse in (True, False):
            driver = _DfsDriver(por=por, collapse=collapse)
            # First iteration re-runs the baseline under the driver so the
            # DFS tree includes it.
            schedules_run = 0
            pruned = 0
            findings = {}
            digests = {baseline.digest}
            budget_exhausted = False
            truncated = baseline.truncated_points > 0
            baseline_replayed = False
            unsound = False
            while True:
                if schedules_run + pruned >= max_runs:
                    exhaustive = False
                    budget_exhausted = True
                    break
                driver.begin_run()
                try:
                    outcome, controller, _ = _run(
                        cell, None, window=window,
                        max_choice_points=max_choice_points,
                        on_choice=driver.on_choice, on_event=driver.on_event,
                    )
                    schedules_run += 1
                    truncated = truncated or outcome.truncated_points > 0
                    digests.add(outcome.digest)
                    if not baseline_replayed:
                        baseline_replayed = True
                    elif _diverges(outcome, baseline):
                        _record_finding(
                            findings, cell, window, baseline, outcome,
                            controller, minimize, shrink_budget,
                        )
                except PruneRun:
                    pruned += 1
                except UnsoundReduction:
                    # Collapse premise broken: rerun the whole DFS without
                    # the group collapse (soundness over speed).
                    unsound = True
                    break
                if not driver.backtrack():
                    exhaustive = not truncated
                    break
            if not unsound:
                break
        bounds = {
            "max_runs": max_runs,
            "max_choice_points": max_choice_points,
            "por": por,
            "group_collapse": driver.collapse,
            "collapsed_groups": driver.collapsed_groups,
            "max_depth_seen": driver.max_depth_seen,
            "pruned_sleep": driver.pruned_sleep,
            "pruned_state": driver.pruned_state,
        }
    elif mode == "random":
        for walk in range(schedules):
            spec = ScheduleSpec.random_walk(seed + walk)
            outcome, controller, _ = _run(
                cell, spec, window=window, max_choice_points=max_choice_points
            )
            schedules_run += 1
            digests.add(outcome.digest)
            if _diverges(outcome, baseline):
                _record_finding(
                    findings, cell, window, baseline, outcome,
                    controller, minimize, shrink_budget,
                )
        bounds = {"schedules": schedules, "seed": seed}
    elif mode == "delay":
        queue: deque[tuple[tuple[int, int], ...]] = deque([()])
        seen: set[tuple[tuple[int, int], ...]] = {()}
        while queue and schedules_run < max_runs:
            deviations = queue.popleft()
            spec = ScheduleSpec.from_choices(deviations)
            outcome, controller, _ = _run(
                cell, spec, window=window, max_choice_points=max_choice_points
            )
            if deviations:  # the empty set re-runs the baseline
                schedules_run += 1
                digests.add(outcome.digest)
                if _diverges(outcome, baseline):
                    _record_finding(
                        findings, cell, window, baseline, outcome,
                        controller, minimize, shrink_budget,
                    )
            if len(deviations) >= bound:
                continue
            last_pos = deviations[-1][0] if deviations else -1
            for record in controller.records:
                if record.pos <= last_pos:
                    continue
                for index in record.eligible:
                    if index == record.chosen:
                        continue
                    # Prioritising a commuting event is a no-op schedule
                    # (same ample-set argument as the DFS) — skip it.
                    if event_meta(record.labels[index]).commuting:
                        continue
                    extended = deviations + ((record.pos, index),)
                    if extended not in seen:
                        seen.add(extended)
                        queue.append(extended)
        exhaustive = not queue and not truncated
        budget_exhausted = bool(queue)
        bounds = {"bound": bound, "max_runs": max_runs}
    else:
        raise ValueError(f"unknown exploration mode: {mode!r}")

    return ExploreResult(
        cell=cell,
        mode=mode,
        window=window,
        baseline=baseline,
        schedules_run=schedules_run,
        pruned=pruned,
        distinct_digests=len(digests),
        digests=frozenset(digests),
        findings=sorted(
            findings.values(), key=lambda f: (f.classification, f.minimized)
        ),
        exhaustive=exhaustive,
        budget_exhausted=budget_exhausted,
        elapsed_s=time.perf_counter() - started,
        bounds=bounds,
    )


# -- counterexample artifacts --------------------------------------------------------


def export_schedule_trace(
    cell: Union[CampaignCell, str],
    schedule: Union[ScheduleSpec, str],
    out_dir,
) -> "list":
    """Re-run ``cell`` under ``schedule`` and dump causal-span artifacts.

    Writes ``<cell>_<schedule>.chrome.json`` (Perfetto-loadable),
    ``...tree.txt`` (span forest) and ``...outcome.json`` under
    ``out_dir``; returns the written paths.  This is the post-mortem
    bundle attached to every explorer counterexample.
    """
    import json
    from pathlib import Path

    from repro.obs import render_span_tree, spans_to_chrome

    if isinstance(cell, str):
        cell = parse_cell_id(cell)
    if isinstance(schedule, str):
        schedule = ScheduleSpec.parse(schedule)
    outcome, _, runtime = _run(cell, schedule)
    if runtime is None or not runtime.spans.enabled:
        raise RuntimeError(
            f"cell {cell.cell_id} produced no spans (trace level below FULL)"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = (
        f"{cell.cell_id}_{schedule.encode()}".replace(":", "_")
        .replace(",", "+").replace("=", "-")
    )
    chrome_path = out / f"{stem}.chrome.json"
    chrome_path.write_text(
        json.dumps(
            spans_to_chrome(
                runtime.spans,
                process_name=f"explore:{cell.cell_id}",
                end_time=runtime.sim.now,
            ),
            indent=1,
        )
        + "\n"
    )
    tree_path = out / f"{stem}.tree.txt"
    tree_path.write_text(render_span_tree(runtime.spans) + "\n")
    outcome_path = out / f"{stem}.outcome.json"
    outcome_path.write_text(
        json.dumps(
            {
                "cell": outcome.cell_id,
                "schedule": outcome.schedule,
                "classification": outcome.classification,
                "violations": list(outcome.violations),
                "digest": repr(outcome.digest),
                "trace_hash": outcome.trace_hash,
            },
            indent=1,
        )
        + "\n"
    )
    return [chrome_path, tree_path, outcome_path]
