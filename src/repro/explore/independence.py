"""Event metadata: channels, touched objects, and the independence relation.

The partial-order reduction and the channel-FIFO constraint both need to
know, for each scheduled event, *which* protocol objects it can read or
write.  Events carry no such declaration — but every scheduling site in
this repo labels its events, and the labels follow a small grammar:

* ``deliver:<kind>:<src>-><dst>`` / ``redeliver:<kind>:<src>-><dst>`` —
  a message delivery: runs receiver code on ``dst`` (which may *send*,
  but sending only mutates ``dst``'s outgoing channel cursors and seeds
  future events — future orderings are their own choice points).
* ``hb:<name>`` / ``hbcheck:<name>`` / ``behaviour:<name>`` /
  ``ct-abort:<name>`` / ``start:<name>`` / ``crash:<name>`` /
  ``*-raise:<name>`` ... — local work of one named object.
* ``rto:<src>-><dst>:<seq>`` — an ARQ retransmission timer: reads the
  sender's pending table and may re-send on the ``src``→``dst`` channel.
* anything unrecognised — conservatively touches *everything* (dependent
  with every other event), so an unlabeled scheduling site degrades
  exploration efficiency, never soundness.

Two events are **independent** when their touched sets are known and
disjoint: executing them in either order yields the same oracle-visible
state.  Heartbeat deliveries get a stronger rule: their handler only
refreshes ``last_seen[src]`` (see :class:`repro.net.detector.Heartbeater`),
which no same-instant event reads — suspicion checks run at local
priority, *after* every same-time delivery — so a ``HEARTBEAT`` delivery
commutes with every event except later deliveries on its own channel
(FIFO).  This is what keeps the heartbeat chatter of the crash-tolerant
variant from exploding the DFS.

Soundness note (why label-derived independence is enough): the simkernel
is deterministic given the choice vector, and the oracles read only
protocol state (handler logs, traces by category, message counters) —
never event sequence numbers.  Swapping two adjacent independent events
therefore reproduces the same oracle-visible execution, which is exactly
the Mazurkiewicz-trace equivalence the sleep sets and the
canonical-history hash assume.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.net.detector import KIND_HEARTBEAT

#: Label prefixes naming local work of a single object: ``<prefix>:<name>``.
_LOCAL_PREFIXES = (
    "hbcheck", "behaviour", "start", "crash", "handler", "abort",
    "ct-abort", "mc-abort", "prop", "arche", "ct-raise", "mc-raise",
    "cd-raise", "cr-raise",
)

#: Local prefixes whose handler also touches the object's *beat* state
#: (``crash`` stops beating via the ``crashed`` flag that ``_beat`` reads,
#: ``start``/``behaviour`` may start/stop the Heartbeater) — they stay
#: dependent with that object's ``hb:`` timer events.
_BEAT_TOUCHING_PREFIXES = ("crash", "start", "behaviour")


@dataclass(frozen=True)
class EventMeta:
    """What one event can touch, derived from its label."""

    label: str
    #: ``(src, dst)`` for message deliveries (FIFO constraint), else None.
    channel: Optional[tuple[str, str]] = None
    #: Objects whose protocol state the event may read/write; ``None``
    #: means unknown (dependent with everything).
    touched: Optional[frozenset] = None
    #: Heartbeat deliveries commute with everything but their own channel.
    commuting: bool = False

    @property
    def is_delivery(self) -> bool:
        return self.channel is not None and not self.label.startswith("rto:")


def _parse_endpoint_pair(text: str) -> Optional[tuple[str, str]]:
    if "->" not in text:
        return None
    src, _, dst = text.partition("->")
    if not src or not dst:
        return None
    return (src, dst)


@lru_cache(maxsize=4096)
def event_meta(label: str) -> EventMeta:
    """Parse an event label into its :class:`EventMeta` (memoised)."""
    parts = label.split(":")
    head = parts[0]
    if head in ("deliver", "redeliver") and len(parts) == 3:
        pair = _parse_endpoint_pair(parts[2])
        if pair is not None:
            return EventMeta(
                label, channel=pair, touched=frozenset((pair[1],)),
                commuting=parts[1] == KIND_HEARTBEAT,
            )
        return EventMeta(label)
    if head == "rto" and len(parts) == 3:
        pair = _parse_endpoint_pair(parts[1])
        if pair is not None:
            # Reads/writes the sender's ARQ state; a retransmission it
            # emits lands on the src->dst channel later.
            return EventMeta(label, channel=pair, touched=frozenset(pair))
        return EventMeta(label)
    if head == "mcast-retry" and len(parts) == 3:
        pair = _parse_endpoint_pair(parts[2])
        if pair is not None:
            return EventMeta(label, touched=frozenset(pair))
        return EventMeta(label)
    if head == "hb" and len(parts) == 2 and parts[1]:
        # A beat timer reads only the Heartbeater's own bookkeeping
        # (_running/generation/crashed) plus the ``suspected`` set — and
        # the single thing ``suspected`` changes is whether a HEARTBEAT
        # is sent to an already-suspected peer.  Suspicions are permanent
        # (a late heartbeat never un-suspects, see Heartbeater._on_heartbeat)
        # and heartbeat deliveries are themselves commuting, so swapping a
        # beat with a same-instant ``hbcheck`` of the *same* object
        # changes at most one oracle-invisible HEARTBEAT.  Beats
        # therefore touch a private ``<name>::beat`` token: independent
        # of the object's protocol work, dependent with the events that
        # really do reach beat state (``crash:``/``start:``).
        return EventMeta(label, touched=frozenset((parts[1] + "::beat",)))
    if head in _LOCAL_PREFIXES and len(parts) >= 2 and parts[-1]:
        name = parts[-1]
        if head in _BEAT_TOUCHING_PREFIXES:
            return EventMeta(label, touched=frozenset((name, name + "::beat")))
        return EventMeta(label, touched=frozenset((name,)))
    if head == "crash-coord":
        return EventMeta(label, touched=frozenset(("coord",)))
    return EventMeta(label)


def independent(a: EventMeta, b: EventMeta) -> bool:
    """May ``a`` and ``b`` be swapped without changing oracle-visible state?

    Same-channel deliveries are always dependent (FIFO order is part of
    the protocol's assumptions, not a schedule choice).
    """
    if a.channel is not None and a.channel == b.channel:
        return False
    if a.commuting or b.commuting:
        return True
    if a.touched is None or b.touched is None:
        return False
    return not (a.touched & b.touched)


def eligible_indices(metas: list[EventMeta]) -> list[int]:
    """Candidate indices the scheduler may legally run first.

    ``metas`` is the FIFO-sorted choice group.  A delivery is eligible
    only if no earlier (smaller-seq) delivery shares its channel —
    per-pair FIFO is an environment assumption of the algorithm (Section
    4.2 "FIFO message sending/receiving"), so violating it would explore
    schedules the modelled system cannot produce.  All non-delivery
    events are eligible.
    """
    seen_channels: set[tuple[str, str]] = set()
    eligible = []
    for index, meta in enumerate(metas):
        if meta.channel is None or meta.label.startswith("rto:"):
            eligible.append(index)
            continue
        if meta.channel not in seen_channels:
            eligible.append(index)
            seen_channels.add(meta.channel)
    return eligible
