"""Delta debugging (ddmin) for schedule minimisation.

Zeller & Hildebrandt's ddmin over an arbitrary item list: find a
1-minimal subset that still makes ``is_failing`` true.  The explorer's
items are a schedule's non-default choices ``(pos, idx)``; the predicate
replays the candidate subset (all other choice points FIFO) and checks
the original violation still shows.  Replays are full runs, so the
``budget`` caps predicate calls — on exhaustion the smallest failing
subset found so far is returned (still a valid, just maybe non-minimal,
repro).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")


def ddmin(
    items: Sequence[T],
    is_failing: Callable[[list[T]], bool],
    budget: Optional[int] = None,
) -> list[T]:
    """Minimise ``items`` while ``is_failing(subset)`` holds.

    Assumes ``is_failing(list(items))`` is true (the caller verified the
    full set reproduces the failure); returns a subset, order-preserved.
    """
    items = list(items)
    if not items:
        return items
    calls = 0

    def test(subset: list[T]) -> bool:
        nonlocal calls
        if budget is not None and calls >= budget:
            return False
        calls += 1
        return is_failing(subset)

    if test([]):
        return []
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        subsets = [
            items[start:start + chunk] for start in range(0, len(items), chunk)
        ]
        reduced = False
        # Try each subset alone ("reduce to subset")...
        for subset in subsets:
            if len(subset) < len(items) and test(subset):
                items = subset
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # ...then each complement ("reduce to complement").
        if granularity > 2:
            for index in range(len(subsets)):
                complement = [
                    item
                    for j, subset in enumerate(subsets)
                    for item in subset
                    if j != index
                ]
                if len(complement) < len(items) and test(complement):
                    items = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if granularity >= len(items):
            break
        granularity = min(len(items), granularity * 2)
    return items
