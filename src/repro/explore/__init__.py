"""Schedule-space exploration for the resolution protocols.

The protocols of this repo are all about *orderings* — concurrent raises,
belated participants, nested abortions racing commits — yet one seeded run
witnesses exactly one interleaving.  This package turns same-timestamp
event ordering into explicit choice points on the deterministic simkernel
(via :class:`repro.simkernel.events.TieBreakPolicy`) and searches the
space of interleavings in the stateless-model-checking tradition of
VeriSoft (Godefroid, POPL 1997) and CHESS (Musuvathi & Qadeer, OSDI 2008):

* bounded-exhaustive DFS with sleep-set partial-order reduction and
  canonical-history state pruning (:func:`explore_cell` mode ``dfs``);
* seeded random walks encoded as compact replayable schedule strings
  (mode ``random``);
* delay-bounded search — at most *d* deviations from FIFO (mode
  ``delay``).

Every run is checked against the PR-2 campaign oracles plus an
order-invariance oracle (same cell, any interleaving → same resolved
exception, same commit outcome, same fault-free message count); every
violation is ddmin-shrunk to a minimal schedule with a one-line repro.
"""

from repro.explore.cache import CacheStats, DigestCache, context_token
from repro.explore.campaign import (
    default_roster,
    hunt_schedule,
    pin_campaign_findings,
    pin_regression,
    run_campaign,
)
from repro.explore.controller import PruneRun, ScheduleController
from repro.explore.engine import (
    ExploreResult,
    Finding,
    explore_cell,
    replay_cell,
    run_digest,
)
from repro.explore.schedule import ScheduleSpec
from repro.explore.sharding import explore_cell_sharded, rt_interleaving_probe
from repro.explore.shrink import ddmin

__all__ = [
    "CacheStats",
    "DigestCache",
    "ExploreResult",
    "Finding",
    "PruneRun",
    "ScheduleController",
    "ScheduleSpec",
    "context_token",
    "ddmin",
    "default_roster",
    "explore_cell",
    "explore_cell_sharded",
    "hunt_schedule",
    "pin_campaign_findings",
    "pin_regression",
    "replay_cell",
    "run_campaign",
    "run_digest",
    "rt_interleaving_probe",
]
