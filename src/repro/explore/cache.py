"""Persistent cross-run digest cache for the schedule explorer.

Exploration campaigns are rerun constantly — after every engine change,
on every CI run, nightly — and most of that work re-derives digests for
schedule prefixes the previous campaign already certified.  This module
remembers them across processes: an append-only file of checksummed
records (the same ``<crc32 hex> <compact json>`` line format, fsync-free,
as the :mod:`repro.transactions.wal` logs, and torn-tail tolerant in the
same way) keyed by a **canonical schedule-prefix digest**.

Two entry kinds:

* ``run`` — the :class:`~repro.explore.engine.RunOutcome` (plus the
  ddmin-minimized finding, if the run diverged) of one fully
  spec-determined run: a seeded random walk or an explicit ``ch:``
  deviation vector.  Warm campaigns skip re-executing these outright.
* ``result`` — the canonical part of a whole bounded-exhaustive search
  (digest set, findings, exhaustiveness) for one cell under one exact
  configuration.  A DFS run's suffix depends on accumulated search state,
  so individual DFS runs are *not* reusable in isolation — but the whole
  certified tree is, and a warm campaign skips re-deriving it entirely.

Safety ("never a wrong skip"):

* every key is an HMAC-like hash over the **context token** — a digest of
  every ``repro`` source file — plus the cell id, the schedule (or search
  configuration) and the exploration window/bounds.  Any code or
  configuration change makes every old key miss; the campaign degrades to
  a cold start, never replays stale outcomes;
* every line carries a CRC over its payload; the reader stops at the
  first invalid line (torn tail, interleaved write, disk corruption) and
  the entries beyond it are simply forgotten — again a cold start;
* only the coordinating parent process reads or appends the file
  (workers return outcomes over the pool); appends are line-buffered so
  the only loss mode a crash can produce is a torn *tail*.
"""

from __future__ import annotations

import ast
import hashlib
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.explore.engine import Finding, RunOutcome

SCHEMA = 1

_TOKEN_CACHE: dict[str, str] = {}


def context_token(root: Optional[Path] = None) -> str:
    """Digest of every ``repro`` source file (memoised per path).

    The cache key's code-version component: two processes share cache
    entries only when their ``repro`` trees are byte-identical, so an
    engine/protocol edit can never satisfy a lookup recorded by older
    code.  Only ``.py`` files matter — the simulation reads nothing else.
    """
    if root is None:
        root = Path(__file__).resolve().parents[1]
    root = Path(root)
    key = str(root)
    token = _TOKEN_CACHE.get(key)
    if token is None:
        acc = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            acc.update(str(path.relative_to(root)).encode())
            acc.update(b"\0")
            acc.update(path.read_bytes())
            acc.update(b"\0")
        token = acc.hexdigest()
        _TOKEN_CACHE[key] = token
    return token


def _digest_to_text(digest: tuple) -> str:
    return repr(digest)


def _digest_from_text(text: str) -> tuple:
    """Inverse of :func:`_digest_to_text`.

    Digests contain only literals (strings, ints, ``None``, nested
    tuples), so ``ast.literal_eval`` reconstructs the exact tuple — a
    JSON round-trip would silently turn tuples into lists and break
    digest-set equality with freshly computed outcomes.
    """
    value = ast.literal_eval(text)
    if not isinstance(value, tuple):
        raise ValueError(f"digest text is not a tuple: {text!r}")
    return value


def encode_outcome(outcome: RunOutcome) -> dict:
    return {
        "cell": outcome.cell_id,
        "schedule": outcome.schedule,
        "classification": outcome.classification,
        "violations": list(outcome.violations),
        "digest": _digest_to_text(outcome.digest),
        "choice_points": outcome.choice_points,
        "truncated_points": outcome.truncated_points,
        "trace_hash": outcome.trace_hash,
    }


def decode_outcome(data: dict) -> RunOutcome:
    return RunOutcome(
        cell_id=data["cell"],
        schedule=data["schedule"],
        classification=data["classification"],
        violations=tuple(data["violations"]),
        digest=_digest_from_text(data["digest"]),
        choice_points=data["choice_points"],
        truncated_points=data["truncated_points"],
        trace_hash=data["trace_hash"],
    )


def encode_finding(finding: Finding) -> dict:
    return {
        "cell": finding.cell_id,
        "schedule": finding.schedule,
        "minimized": finding.minimized,
        "classification": finding.classification,
        "violations": list(finding.violations),
        "digest": _digest_to_text(finding.digest),
        "baseline_digest": _digest_to_text(finding.baseline_digest),
        "occurrences": finding.occurrences,
    }


def decode_finding(data: dict) -> Finding:
    return Finding(
        cell_id=data["cell"],
        schedule=data["schedule"],
        minimized=data["minimized"],
        classification=data["classification"],
        violations=tuple(data["violations"]),
        digest=_digest_from_text(data["digest"]),
        baseline_digest=_digest_from_text(data["baseline_digest"]),
        occurrences=data["occurrences"],
    )


@dataclass
class CacheStats:
    """Load/lookup accounting, reported by benchmarks and the CLI."""

    entries_loaded: int = 0
    bad_lines: int = 0
    hits: int = 0
    misses: int = 0
    appended: int = 0

    def to_payload(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries_loaded": self.entries_loaded,
            "bad_lines": self.bad_lines,
            "hits": self.hits,
            "misses": self.misses,
            "appended": self.appended,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


@dataclass
class DigestCache:
    """The append-only cross-run cache (see module docstring).

    Args:
        path: the cache file; created on first append, loaded lazily on
            first lookup.  A missing, empty, or corrupted file is a valid
            cold cache.
        context: override the code-version token (tests use this to
            simulate a cache written by different code).
    """

    path: Path
    context: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _mem: Optional[dict[str, dict]] = field(default=None, repr=False)
    _handle: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if self.context is None:
            self.context = context_token()

    # -- keys ------------------------------------------------------------------

    def _key(self, kind: str, parts: tuple) -> str:
        body = json.dumps(
            [SCHEMA, self.context, kind, list(parts)],
            separators=(",", ":"), default=str,
        )
        return hashlib.sha256(body.encode()).hexdigest()

    def run_key(
        self,
        cell_id: str,
        schedule: str,
        window: Optional[tuple[float, float]],
        max_choice_points: Optional[int],
    ) -> str:
        """Key for one spec-determined run (walk or ``ch:`` vector)."""
        return self._key(
            "run",
            (cell_id, schedule, list(window) if window else None,
             max_choice_points),
        )

    def result_key(self, cell_id: str, mode: str, config: dict) -> str:
        """Key for a whole bounded search under one exact configuration."""
        return self._key(
            "result", (cell_id, mode, sorted(config.items())),
        )

    # -- persistence -----------------------------------------------------------

    def _load(self) -> dict[str, dict]:
        if self._mem is not None:
            return self._mem
        mem: dict[str, dict] = {}
        if self.path.exists():
            with open(self.path, "rb") as fh:
                for raw in fh:
                    entry = self._parse_line(raw)
                    if entry is None:
                        # Torn tail or corruption: everything beyond the
                        # first bad line is untrusted.  Forget it — a
                        # smaller cache is a correct cache.
                        self.stats.bad_lines += 1
                        break
                    mem[entry["k"]] = entry
        self._mem = mem
        self.stats.entries_loaded = len(mem)
        return mem

    @staticmethod
    def _parse_line(raw: bytes) -> Optional[dict]:
        if not raw.endswith(b"\n"):
            return None
        line = raw[:-1]
        if len(line) < 10 or line[8:9] != b" ":
            return None
        crc_text, payload = line[:8], line[9:]
        try:
            crc = int(crc_text, 16)
        except ValueError:
            return None
        if zlib.crc32(payload) != crc:
            return None
        try:
            entry = json.loads(payload)
        except ValueError:
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("s") != SCHEMA
            or entry.get("t") not in ("run", "result")
            or not isinstance(entry.get("k"), str)
            or not isinstance(entry.get("v"), dict)
        ):
            return None
        return entry

    def _append(self, entry: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        payload = json.dumps(
            entry, separators=(",", ":"), sort_keys=True
        ).encode()
        self._handle.write(b"%08x %s\n" % (zlib.crc32(payload), payload))
        self._handle.flush()
        self.stats.appended += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "DigestCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- lookups ---------------------------------------------------------------

    def get_run(
        self, key: str
    ) -> Optional[tuple[RunOutcome, Optional[Finding]]]:
        entry = self._load().get(key)
        if entry is None or entry["t"] != "run":
            self.stats.misses += 1
            return None
        try:
            outcome = decode_outcome(entry["v"]["o"])
            finding = (
                decode_finding(entry["v"]["f"])
                if entry["v"].get("f") is not None else None
            )
        except (KeyError, ValueError, SyntaxError, TypeError):
            # A structurally valid line with garbage inside: treat as a
            # miss, never guess.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return outcome, finding

    def put_run(
        self, key: str, outcome: RunOutcome, finding: Optional[Finding] = None
    ) -> None:
        value = {"o": encode_outcome(outcome)}
        if finding is not None:
            value["f"] = encode_finding(finding)
        entry = {"s": SCHEMA, "t": "run", "k": key, "v": value}
        self._load()[key] = entry
        self._append(entry)

    def get_result(self, key: str) -> Optional[dict]:
        """A cached whole-search summary (see :func:`encode_result`)."""
        entry = self._load().get(key)
        if entry is None or entry["t"] != "result":
            self.stats.misses += 1
            return None
        value = entry["v"]
        try:
            decoded = {
                "baseline": decode_outcome(value["baseline"]),
                "digests": frozenset(
                    _digest_from_text(text) for text in value["digests"]
                ),
                "findings": [
                    decode_finding(data) for data in value["findings"]
                ],
                "exhaustive": bool(value["exhaustive"]),
                "budget_exhausted": bool(value.get("budget_exhausted", False)),
                "schedules_run": int(value["schedules_run"]),
                "pruned": int(value["pruned"]),
                "bounds": dict(value.get("bounds", {})),
            }
        except (KeyError, ValueError, SyntaxError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return decoded

    def put_result(self, key: str, result) -> None:
        """Record an :class:`~repro.explore.engine.ExploreResult`'s
        canonical part (digest set, findings, exhaustiveness)."""
        value = {
            "baseline": encode_outcome(result.baseline),
            "digests": sorted(
                _digest_to_text(digest) for digest in result.digests
            ),
            "findings": [
                encode_finding(finding) for finding in result.findings
            ],
            "exhaustive": result.exhaustive,
            "budget_exhausted": bool(
                getattr(result, "budget_exhausted", False)
            ),
            "schedules_run": result.schedules_run,
            "pruned": result.pruned,
            "bounds": dict(result.bounds),
        }
        entry = {"s": SCHEMA, "t": "result", "k": key, "v": value}
        self._load()[key] = entry
        self._append(entry)
