"""The tie-break policy that records, replays and randomises schedules.

A :class:`ScheduleController` is installed for one simulated run via
:func:`repro.simkernel.scheduler.scheduling_policy`.  Whenever the event
queue pops a *choice group* (>1 live events at the minimal
``(time, priority)``), the controller:

1. computes the **eligible** candidates (per-pair FIFO is never violated,
   see :func:`repro.explore.independence.eligible_indices`);
2. if the group lies outside the exploration ``window``, takes the FIFO
   default without consuming a choice-point ordinal (bounds the search to
   the resolution window — heartbeat-only prefixes and long quiescent
   tails add nothing but depth);
3. otherwise consults, in order: the DFS driver hook (``on_choice``), the
   replay deviations, the random-walk RNG — falling back to FIFO;
4. records the decision so any run converts to an explicit ``ch:``
   schedule string (:meth:`recorded_spec`).

``on_execute`` feeds every executed event to the driver hook so the DFS
engine can maintain sleep sets and the canonical-history hash.  Raising
:class:`PruneRun` from a hook aborts the run (the event queue restores
the un-popped group first); the engine counts it as a pruned schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.explore.independence import EventMeta, eligible_indices, event_meta
from repro.explore.schedule import ScheduleSpec
from repro.simkernel.events import Event, TieBreakPolicy


class PruneRun(BaseException):
    """Raised by a driver hook to abandon a redundant interleaving.

    Derives from ``BaseException`` so no harness-level ``except
    Exception`` between the event queue and the exploration engine can
    accidentally swallow the unwind mid-run.
    """


@dataclass(frozen=True)
class ChoiceRecord:
    """One resolved choice point (for minimisation and diagnostics)."""

    pos: int
    time: float
    priority: int
    chosen: int
    k: int
    labels: tuple[str, ...]
    eligible: tuple[int, ...]


class ScheduleController(TieBreakPolicy):
    """Drives one run's tie-breaking according to a :class:`ScheduleSpec`."""

    def __init__(
        self,
        spec: ScheduleSpec | None = None,
        window: Optional[tuple[float, float]] = None,
        max_choice_points: Optional[int] = None,
        on_choice: Optional[
            Callable[
                [int, list[EventMeta], list[int], float, int], Optional[int]
            ]
        ] = None,
        on_event: Optional[Callable[[EventMeta, float, int], None]] = None,
    ) -> None:
        spec = spec if spec is not None else ScheduleSpec.fifo()
        self.spec = spec
        self.window = window
        self.max_choice_points = max_choice_points
        self.on_choice = on_choice
        self.on_event = on_event
        self._deviations = dict(spec.choices) if spec.kind == "ch" else {}
        self._rng = random.Random(spec.seed) if spec.kind == "rw" else None
        self.pos = 0
        self.records: list[ChoiceRecord] = []
        #: Choice groups seen beyond ``max_choice_points`` (0 = the run's
        #: choice space fits the bound and "exhaustive" means exhaustive).
        self.truncated_points = 0

    # -- TieBreakPolicy interface ------------------------------------------------

    def choose(self, candidates: Sequence[Event]) -> int:
        first = candidates[0]
        if self.window is not None and not (
            self.window[0] <= first.time <= self.window[1]
        ):
            return 0
        if (
            self.max_choice_points is not None
            and self.pos >= self.max_choice_points
        ):
            self.truncated_points += 1
            return 0
        metas = [event_meta(event.label) for event in candidates]
        eligible = eligible_indices(metas)
        pos = self.pos
        self.pos += 1
        chosen: Optional[int] = None
        if self.on_choice is not None:
            chosen = self.on_choice(
                pos, metas, eligible, first.time, first.priority
            )
        if chosen is None:
            if self._rng is not None:
                chosen = eligible[self._rng.randrange(len(eligible))]
            else:
                chosen = self._deviations.get(pos, 0)
                if chosen not in eligible:
                    chosen = 0
        self.records.append(
            ChoiceRecord(
                pos, first.time, first.priority, chosen, len(candidates),
                tuple(meta.label for meta in metas), tuple(eligible),
            )
        )
        return chosen

    def on_execute(self, event: Event) -> None:
        if self.on_event is not None:
            self.on_event(event_meta(event.label), event.time, event.priority)

    # -- reporting ----------------------------------------------------------------

    def recorded_spec(self) -> ScheduleSpec:
        """The run's deviations as an explicit ``ch:`` schedule."""
        return ScheduleSpec.from_choices(
            (record.pos, record.chosen) for record in self.records
        )
