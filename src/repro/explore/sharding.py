"""Distributed schedule exploration: sharded frontiers and seed ranges.

The serial explorer (:func:`repro.explore.engine.explore_cell`) certifies
an N=3 tree in under a second but N=4 trees run to hundreds of thousands
of schedules — one core is the bottleneck.  Both search modes shard
naturally across the PR-6 warm ``parallel_map`` pools:

* **Random walks** are embarrassingly parallel: the seed range
  ``[seed, seed + schedules)`` splits into contiguous sub-ranges, one per
  shard.  Every walk is fully determined by its absolute seed, and the
  merge replays the serial driver exactly (seed order, first finding per
  digest wins), so the sharded result — digests, findings, minimized
  schedules — is **identical to the serial one** for every worker count
  and shard boundary.

* **Bounded-exhaustive DFS** shards by *choice-point prefix*.  A serial
  enumeration pass runs the normal POR'd DFS but cuts every path at
  ``split_depth`` in-window choice points, recording the cut prefix
  instead of descending (paths that complete shallower are full runs and
  are merged directly).  Each prefix then seeds an independent subtree
  search: the DFS driver starts with the prefix pinned as unflippable
  frames and a **fresh** sleep-set/state table, so a shard never prunes
  on the strength of what another shard explored.  That makes every
  subtree self-contained — deterministic in isolation — at the price of
  re-exploring states the serial search would have recognised across
  subtrees.  Soundness is unchanged: shards only ever explore *more*
  interleavings than the serial reduction, so

      merged digest set == serial digest set

  (the testable equality; see ``tests/properties``).  Run/prune *counts*
  legitimately differ from serial.  The merge folds per-prefix results in
  enumeration order, so the full merged result is bit-identical across
  worker counts and shard assignments.

On hosts without ``fork`` or with one core, ``parallel_map`` falls back
to in-process execution of the very same shard functions — same merge,
same result, serial wall-clock.

The optional :class:`~repro.explore.cache.DigestCache` short-circuits
both modes across *processes*: random walks hit per-seed ``run`` entries,
DFS and delay searches hit whole-``result`` entries (a DFS run's suffix
depends on accumulated search state, so only the whole certified tree is
reusable).  Cache lookups and appends happen exclusively in the
coordinating parent.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional, Union

from repro.explore.controller import PruneRun
from repro.explore.engine import (
    DEFAULT_WINDOW,
    ExploreResult,
    Finding,
    RunOutcome,
    UnsoundReduction,
    _DfsDriver,
    _diverges,
    _Frame,
    _minimise,
    _run,
)
from repro.explore.cache import DigestCache
from repro.explore.schedule import ScheduleSpec
from repro.workloads.campaigns import CampaignCell, parse_cell_id
from repro.workloads.parallel import parallel_map

#: A schedule prefix: the branch taken at each of the first ``k``
#: in-window choice points, plus whether that choice group was collapsed
#: (the subtree driver must re-arm the same-instant spawn guard for it).
Prefix = tuple[tuple[int, bool], ...]


# -- prefix enumeration --------------------------------------------------------------


class _PrefixEnumerator(_DfsDriver):
    """The serial DFS, cut at ``split_depth``: emits frontier prefixes.

    Paths reaching ``split_depth`` choice points are recorded and pruned
    (their subtrees belong to the shards); shallower paths complete as
    ordinary runs and their outcomes merge directly.  Sleep sets and
    canonical-history pruning apply above the cut exactly as in the
    serial search — a branch pruned here is one whose continuations are
    covered by already-emitted prefixes, so shard coverage is preserved.
    """

    def __init__(self, split_depth: int, por: bool, collapse: bool) -> None:
        super().__init__(por=por, collapse=collapse)
        self.split_depth = split_depth
        self.prefixes: list[Prefix] = []

    def on_choice(self, pos, metas, eligible, time, priority):
        if self.depth == self.split_depth and self.depth >= len(self.frames):
            self.prefixes.append(
                tuple((frame.chosen, frame.collapsed) for frame in self.frames)
            )
            raise PruneRun()
        return super().on_choice(pos, metas, eligible, time, priority)


def _prefix_frames(prefix: Prefix) -> list[_Frame]:
    """Pinned frames replaying ``prefix``: never flipped by backtracking."""
    return [
        _Frame(
            chosen=chosen, tried={chosen}, eligible=(),
            entry_asleep=frozenset(), collapsed=collapsed,
        )
        for chosen, collapsed in prefix
    ]


# -- picklable shard workers ---------------------------------------------------------


def _record_first_wins(findings: dict, finding: Finding) -> None:
    existing = findings.get(finding.digest)
    if existing is None:
        findings[finding.digest] = finding
    else:
        findings[finding.digest] = replace(
            existing, occurrences=existing.occurrences + finding.occurrences
        )


def _make_finding(
    cell: CampaignCell,
    window,
    baseline: RunOutcome,
    outcome: RunOutcome,
    controller,
    minimize: bool,
    shrink_budget: int,
) -> Finding:
    recorded = controller.recorded_spec()
    minimized = recorded
    if minimize and recorded.choices:
        minimized = _minimise(
            cell, window, baseline, recorded.choices, budget=shrink_budget
        )
    return Finding(
        cell_id=cell.cell_id,
        schedule=outcome.schedule,
        minimized=minimized.encode(),
        classification=outcome.classification,
        violations=outcome.violations,
        digest=outcome.digest,
        baseline_digest=baseline.digest,
    )


def explore_subtree(item: tuple) -> dict:
    """``parallel_map`` worker: drain one prefix-rooted DFS subtree.

    ``item`` is ``(cell_id, baseline, prefix, config)`` with ``config`` a
    plain dict of the search bounds.  Returns a picklable summary; the
    result is fully determined by the item (fresh driver, fresh tables),
    which is what makes the enumeration-order merge shard-invariant.
    """
    cell_id, baseline, prefix, config = item
    cell = parse_cell_id(cell_id)
    window = (
        tuple(config["window"]) if config["window"] is not None else None
    )
    driver = _DfsDriver(por=config["por"], collapse=config["collapse"])
    driver.frames = _prefix_frames(prefix)
    digests: set = set()
    findings: dict = {}
    schedules_run = 0
    pruned = 0
    truncated = False
    budget_exhausted = False
    unsound = False
    max_depth_seen = 0
    while True:
        if schedules_run + pruned >= config["max_runs"]:
            budget_exhausted = True
            break
        driver.begin_run()
        try:
            outcome, controller, _ = _run(
                cell, None, window=window,
                max_choice_points=config["max_choice_points"],
                on_choice=driver.on_choice, on_event=driver.on_event,
            )
            schedules_run += 1
            truncated = truncated or outcome.truncated_points > 0
            digests.add(outcome.digest)
            if _diverges(outcome, baseline):
                _record_first_wins(
                    findings,
                    _make_finding(
                        cell, window, baseline, outcome, controller,
                        config["minimize"], config["shrink_budget"],
                    ),
                )
        except PruneRun:
            pruned += 1
        except UnsoundReduction:
            unsound = True
            break
        if not driver.backtrack():
            break
        max_depth_seen = max(max_depth_seen, driver.max_depth_seen)
    return {
        "digests": tuple(digests),
        "findings": [findings[key] for key in findings],
        "schedules_run": schedules_run,
        "pruned": pruned,
        "truncated": truncated,
        "budget_exhausted": budget_exhausted,
        "unsound": unsound,
        "max_depth_seen": max(max_depth_seen, driver.max_depth_seen),
        "collapsed_groups": driver.collapsed_groups,
    }


def explore_walks(item: tuple) -> list:
    """``parallel_map`` worker: run one contiguous range of seeded walks.

    ``item`` is ``(cell_id, baseline, seed_start, seed_stop, config)``.
    Returns ``[(seed, RunOutcome, Finding | None), ...]`` in seed order —
    each element fully determined by its absolute seed, so any partition
    of the seed range merges back to the identical campaign.
    """
    cell_id, baseline, seed_start, seed_stop, config = item
    cell = parse_cell_id(cell_id)
    window = (
        tuple(config["window"]) if config["window"] is not None else None
    )
    out = []
    for seed in range(seed_start, seed_stop):
        outcome, controller, _ = _run(
            cell, ScheduleSpec.random_walk(seed), window=window,
            max_choice_points=config["max_choice_points"],
        )
        finding = None
        if _diverges(outcome, baseline):
            finding = _make_finding(
                cell, window, baseline, outcome, controller,
                config["minimize"], config["shrink_budget"],
            )
        out.append((seed, outcome, finding))
    return out


# -- sharded drivers -----------------------------------------------------------------


def _shard_ranges(start: int, count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[start, start+count)`` into ``shards`` contiguous ranges.

    Deterministic and exhaustive: ranges are consecutive, cover every
    seed exactly once, and differ in length by at most one.
    """
    shards = max(1, min(shards, count)) if count else 0
    ranges = []
    base, extra = divmod(count, shards) if shards else (0, 0)
    cursor = start
    for index in range(shards):
        length = base + (1 if index < extra else 0)
        ranges.append((cursor, cursor + length))
        cursor += length
    return ranges


def _dfs_config(
    window, max_choice_points, max_runs, por, collapse, minimize, shrink_budget
) -> dict:
    return {
        "window": list(window) if window is not None else None,
        "max_choice_points": max_choice_points,
        "max_runs": max_runs,
        "por": por,
        "collapse": collapse,
        "minimize": minimize,
        "shrink_budget": shrink_budget,
    }


def explore_cell_sharded(
    cell: Union[CampaignCell, str],
    mode: str = "dfs",
    schedules: int = 200,
    seed: int = 0,
    bound: int = 2,
    max_runs: int = 5000,
    max_choice_points: int = 400,
    window: Optional[tuple[float, float]] = DEFAULT_WINDOW,
    por: bool = True,
    minimize: bool = True,
    shrink_budget: int = 150,
    workers: Optional[int] = None,
    split_depth: int = 4,
    cache: Optional[DigestCache] = None,
) -> ExploreResult:
    """Sharded mirror of :func:`repro.explore.engine.explore_cell`.

    ``mode``:

    * ``dfs`` — prefix-sharded bounded-exhaustive DFS.  ``max_runs``
      bounds each subtree (and the enumeration pass) individually; the
      merged digest set equals the serial one whenever both are
      exhaustive.
    * ``random`` — seed-range-sharded walks; bit-identical to the serial
      driver for every worker count and shard boundary.
    * ``delay`` — delegates to the serial engine (the BFS frontier is
      sequential by construction) but still participates in whole-result
      caching.

    ``workers=None`` lets ``parallel_map`` pick (its usual serial
    fallback applies on one core); an explicit ``workers >= 2`` always
    pools.  ``cache`` short-circuits repeated campaigns — per-seed for
    walks, whole-result for dfs/delay — and is touched only in this
    process, never in workers.
    """
    if isinstance(cell, str):
        cell = parse_cell_id(cell)
    started = time.perf_counter()

    if mode == "random":
        return _sharded_random(
            cell, schedules, seed, max_choice_points, window, minimize,
            shrink_budget, workers, cache, started,
        )
    if mode == "delay":
        return _cached_delay(
            cell, bound, max_runs, max_choice_points, window, por,
            minimize, shrink_budget, cache, started,
        )
    if mode != "dfs":
        raise ValueError(f"unknown sharded exploration mode: {mode!r}")

    result_key = None
    if cache is not None:
        result_key = cache.result_key(
            cell.cell_id, "dfs",
            {
                "window": list(window) if window else None,
                "max_choice_points": max_choice_points,
                "max_runs": max_runs,
                "por": por,
                "minimize": minimize,
                "shrink_budget": shrink_budget,
                "split_depth": split_depth,
            },
        )
        cached = cache.get_result(result_key)
        if cached is not None:
            return _from_cached_result(
                cell, "dfs", window, cached, started
            )

    baseline, _, _ = _run(
        cell, None, window=window, max_choice_points=max_choice_points
    )

    for collapse in (True, False):
        merged = _sharded_dfs_once(
            cell, baseline, window, max_choice_points, max_runs, por,
            collapse, minimize, shrink_budget, workers, split_depth,
        )
        if merged is not None:
            break

    result = ExploreResult(
        cell=cell,
        mode="dfs",
        window=window,
        baseline=baseline,
        schedules_run=merged["schedules_run"],
        pruned=merged["pruned"],
        distinct_digests=len(merged["digests"]),
        digests=frozenset(merged["digests"]),
        findings=sorted(
            merged["findings"].values(),
            key=lambda f: (f.classification, f.minimized),
        ),
        exhaustive=merged["exhaustive"],
        budget_exhausted=merged["budget_exhausted"],
        elapsed_s=time.perf_counter() - started,
        bounds=merged["bounds"],
    )
    if cache is not None and result_key is not None:
        cache.put_result(result_key, result)
    return result


def _sharded_dfs_once(
    cell, baseline, window, max_choice_points, max_runs, por, collapse,
    minimize, shrink_budget, workers, split_depth,
) -> Optional[dict]:
    """One collapse-setting attempt; ``None`` means retry without collapse."""
    enumerator = _PrefixEnumerator(split_depth, por=por, collapse=collapse)
    digests = {baseline.digest}
    findings: dict = {}
    schedules_run = 0
    pruned = 0
    truncated = baseline.truncated_points > 0
    budget_exhausted = False
    run_index = 0
    while True:
        if schedules_run + pruned >= max_runs:
            budget_exhausted = True
            break
        enumerator.begin_run()
        run_index += 1
        try:
            outcome, controller, _ = _run(
                cell, None, window=window,
                max_choice_points=max_choice_points,
                on_choice=enumerator.on_choice,
                on_event=enumerator.on_event,
            )
            schedules_run += 1
            truncated = truncated or outcome.truncated_points > 0
            digests.add(outcome.digest)
            # Mirror the serial driver: the very first DFS run is the
            # baseline replayed under the driver and is never a finding.
            # (If it was cut at the frontier, the greedy path lives in a
            # shard and no run here is the baseline.)
            if run_index == 1:
                pass
            elif _diverges(outcome, baseline):
                _record_first_wins(
                    findings,
                    _make_finding(
                        cell, window, baseline, outcome, controller,
                        minimize, shrink_budget,
                    ),
                )
        except PruneRun:
            pruned += 1
        except UnsoundReduction:
            if collapse:
                return None
            raise
        if not enumerator.backtrack():
            break

    config = _dfs_config(
        window, max_choice_points, max_runs, por, collapse, minimize,
        shrink_budget,
    )
    items = [
        (cell.cell_id, baseline, prefix, config)
        for prefix in enumerator.prefixes
    ]
    # One task per prefix: subtree sizes vary by orders of magnitude and
    # are unknown up front, so any grouping risks serializing a giant
    # subtree behind small ones.
    shard_results = parallel_map(
        explore_subtree, items, max_workers=workers, chunk_size=1,
        cost_hint=float(len(items)) * 2000.0,
    )
    exhausted_shards = 0
    max_depth_seen = enumerator.max_depth_seen
    collapsed_groups = enumerator.collapsed_groups
    for shard in shard_results:
        if shard["unsound"]:
            if collapse:
                return None
            raise UnsoundReduction(
                "collapse-free subtree reported an unsound reduction"
            )
        for digest in shard["digests"]:
            digests.add(digest)
        for finding in shard["findings"]:
            _record_first_wins(findings, finding)
        schedules_run += shard["schedules_run"]
        pruned += shard["pruned"]
        truncated = truncated or shard["truncated"]
        if shard["budget_exhausted"]:
            exhausted_shards += 1
            budget_exhausted = True
        max_depth_seen = max(max_depth_seen, shard["max_depth_seen"])
        collapsed_groups += shard["collapsed_groups"]
    return {
        "digests": digests,
        "findings": findings,
        "schedules_run": schedules_run,
        "pruned": pruned,
        "exhaustive": not truncated and not budget_exhausted,
        "budget_exhausted": budget_exhausted,
        "bounds": {
            "max_runs": max_runs,
            "max_choice_points": max_choice_points,
            "por": por,
            "group_collapse": collapse,
            "collapsed_groups": collapsed_groups,
            "max_depth_seen": max_depth_seen,
            "sharded": True,
            "split_depth": split_depth,
            "prefixes": len(items),
            "exhausted_shards": exhausted_shards,
            "workers": workers,
        },
    }


def _sharded_random(
    cell, schedules, seed, max_choice_points, window, minimize,
    shrink_budget, workers, cache, started,
) -> ExploreResult:
    baseline, _, _ = _run(
        cell, None, window=window, max_choice_points=max_choice_points
    )
    config = {
        "window": list(window) if window is not None else None,
        "max_choice_points": max_choice_points,
        "minimize": minimize,
        "shrink_budget": shrink_budget,
    }
    by_seed: dict[int, tuple[RunOutcome, Optional[Finding]]] = {}
    misses: list[int] = []
    cache_hits = 0
    for walk_seed in range(seed, seed + schedules):
        if cache is not None:
            key = cache.run_key(
                cell.cell_id, f"rw:{walk_seed}", window, max_choice_points
            )
            hit = cache.get_run(key)
            if hit is not None:
                by_seed[walk_seed] = hit
                cache_hits += 1
                continue
        misses.append(walk_seed)

    if misses:
        # Misses are usually contiguous (cold cache) or sparse (warm);
        # group consecutive seeds so shard payloads stay compact.
        shard_count = max(1, (workers or 1)) * 4 if workers else 8
        ranges: list[tuple[int, int]] = []
        run_start = misses[0]
        previous = misses[0]
        for walk_seed in misses[1:]:
            if walk_seed != previous + 1:
                ranges.append((run_start, previous + 1))
                run_start = walk_seed
            previous = walk_seed
        ranges.append((run_start, previous + 1))
        split: list[tuple[int, int]] = []
        for lo, hi in ranges:
            split.extend(_shard_ranges(lo, hi - lo, shard_count))
        items = [
            (cell.cell_id, baseline, lo, hi, config)
            for lo, hi in split if hi > lo
        ]
        for shard in parallel_map(
            explore_walks, items, max_workers=workers,
            cost_hint=float(len(misses)) * 500.0,
            item_costs=[float(hi - lo) for _, _, lo, hi, _ in items],
        ):
            for walk_seed, outcome, finding in shard:
                by_seed[walk_seed] = (outcome, finding)
                if cache is not None:
                    cache.put_run(
                        cache.run_key(
                            cell.cell_id, f"rw:{walk_seed}", window,
                            max_choice_points,
                        ),
                        outcome, finding,
                    )

    digests = {baseline.digest}
    findings: dict = {}
    schedules_run = 1
    for walk_seed in range(seed, seed + schedules):
        outcome, finding = by_seed[walk_seed]
        schedules_run += 1
        digests.add(outcome.digest)
        if finding is not None:
            _record_first_wins(findings, finding)
    return ExploreResult(
        cell=cell,
        mode="random",
        window=window,
        baseline=baseline,
        schedules_run=schedules_run,
        pruned=0,
        distinct_digests=len(digests),
        digests=frozenset(digests),
        findings=sorted(
            findings.values(), key=lambda f: (f.classification, f.minimized)
        ),
        exhaustive=False,
        elapsed_s=time.perf_counter() - started,
        bounds={
            "schedules": schedules,
            "seed": seed,
            "sharded": True,
            "workers": workers,
            "cache_hits": cache_hits,
            "cache_misses": len(misses),
        },
    )


def _cached_delay(
    cell, bound, max_runs, max_choice_points, window, por, minimize,
    shrink_budget, cache, started,
) -> ExploreResult:
    from repro.explore.engine import explore_cell

    result_key = None
    if cache is not None:
        result_key = cache.result_key(
            cell.cell_id, "delay",
            {
                "window": list(window) if window else None,
                "max_choice_points": max_choice_points,
                "max_runs": max_runs,
                "bound": bound,
                "por": por,
                "minimize": minimize,
                "shrink_budget": shrink_budget,
            },
        )
        cached = cache.get_result(result_key)
        if cached is not None:
            return _from_cached_result(
                cell, "delay", window, cached, started
            )
    result = explore_cell(
        cell, mode="delay", bound=bound, max_runs=max_runs,
        max_choice_points=max_choice_points, window=window, por=por,
        minimize=minimize, shrink_budget=shrink_budget,
    )
    if cache is not None and result_key is not None:
        cache.put_result(result_key, result)
    return result


def _from_cached_result(
    cell, mode, window, cached: dict, started: float
) -> ExploreResult:
    bounds = dict(cached["bounds"])
    bounds["from_cache"] = True
    return ExploreResult(
        cell=cell,
        mode=mode,
        window=window,
        baseline=cached["baseline"],
        schedules_run=cached["schedules_run"],
        pruned=cached["pruned"],
        distinct_digests=len(cached["digests"]),
        digests=cached["digests"],
        findings=list(cached["findings"]),
        exhaustive=cached["exhaustive"],
        budget_exhausted=cached["budget_exhausted"],
        elapsed_s=time.perf_counter() - started,
        bounds=bounds,
    )


# -- wall-clock interleaving probe ---------------------------------------------------


def rt_interleaving_probe(
    cell: Union[CampaignCell, str],
    runs: int = 3,
    time_scale: float = 0.002,
) -> dict:
    """Run ``cell`` repeatedly on the asyncio backend and digest-compare.

    The simulated explorer can only permute *same-timestamp* events; real
    wall-clock concurrency also jitters across timestamps.  This probe
    executes the cell on :mod:`repro.rt`'s asyncio kernel ``runs`` times
    via the PR-7 conformance harness and compares each oracle digest
    against the simulated run — a cheap adversarial sweep over
    interleavings the simulation cannot express.  Returns
    ``{"ok": bool, "runs": n, "divergences": [...]}``.
    """
    from repro.rt.harness import ProtocolHarness

    if isinstance(cell, str):
        cell = parse_cell_id(cell)
    harness = ProtocolHarness(time_scale=time_scale)
    divergences = []
    completed = 0
    for attempt in range(runs):
        result = harness.compare(cell)
        completed += 1
        if not result.match:
            divergences.append(
                {"attempt": attempt, "keys": list(result.divergent_keys())}
            )
    return {
        "ok": not divergences,
        "runs": completed,
        "divergences": divergences,
    }
