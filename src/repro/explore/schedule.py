"""Compact, replayable schedule strings.

A schedule names one interleaving of a cell as deviations from the FIFO
baseline.  Three forms:

* ``fifo`` — the deterministic default order (no deviations).
* ``ch:<pos>=<idx>[,<pos>=<idx>...]`` — explicit choice vector, sparse:
  at choice point ``pos`` (0-based ordinal over the run's choice groups
  with more than one candidate) pick candidate ``idx`` of the FIFO-sorted
  group; every unmentioned point takes the FIFO default (index 0).  An
  out-of-range or FIFO-ineligible index also falls back to 0, so every
  ``ch:`` string replays on every cell.
* ``rw:<seed>`` — the seeded random walk: at each choice point pick
  uniformly among the eligible candidates with ``random.Random(seed)``.
  Replaying the same seed reproduces the walk bit-identically; the
  recorded deviations convert any walk to an equivalent ``ch:`` string
  (see :meth:`ScheduleController.recorded_spec`).

Schedule strings appear in repro commands, regression tests and
counterexample artifacts — they are the stable interface, so keep the
grammar append-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScheduleSpec:
    """A parsed schedule string (picklable, hashable)."""

    kind: str = "fifo"  # "fifo" | "ch" | "rw"
    seed: int = 0
    #: Sparse (choice point ordinal, candidate index) deviations, sorted.
    choices: tuple[tuple[int, int], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in ("fifo", "ch", "rw"):
            raise ValueError(f"unknown schedule kind: {self.kind!r}")
        object.__setattr__(self, "choices", tuple(sorted(self.choices)))

    @staticmethod
    def fifo() -> "ScheduleSpec":
        return ScheduleSpec("fifo")

    @staticmethod
    def random_walk(seed: int) -> "ScheduleSpec":
        return ScheduleSpec("rw", seed=seed)

    @staticmethod
    def from_choices(choices) -> "ScheduleSpec":
        deviations = tuple(
            (int(pos), int(idx)) for pos, idx in choices if int(idx) != 0
        )
        if not deviations:
            return ScheduleSpec("fifo")
        return ScheduleSpec("ch", choices=deviations)

    def encode(self) -> str:
        if self.kind == "fifo":
            return "fifo"
        if self.kind == "rw":
            return f"rw:{self.seed}"
        body = ",".join(f"{pos}={idx}" for pos, idx in self.choices)
        return f"ch:{body}"

    @staticmethod
    def parse(text: str) -> "ScheduleSpec":
        text = text.strip()
        if text == "fifo":
            return ScheduleSpec("fifo")
        if text.startswith("rw:"):
            try:
                return ScheduleSpec("rw", seed=int(text[3:]))
            except ValueError:
                raise ValueError(f"malformed random-walk schedule: {text!r}") from None
        if text.startswith("ch:"):
            body = text[3:]
            if not body:
                raise ValueError(f"empty choice vector in schedule {text!r}")
            choices = []
            if body:
                for item in body.split(","):
                    try:
                        pos, idx = item.split("=", 1)
                        choices.append((int(pos), int(idx)))
                    except ValueError:
                        raise ValueError(
                            f"malformed choice {item!r} in schedule {text!r}"
                        ) from None
            return ScheduleSpec.from_choices(choices)
        raise ValueError(f"unknown schedule string: {text!r}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.encode()
