"""Adversarial exploration campaigns and pinned-regression emission.

The explorer's output wants to be *cumulative*: a counterexample found
once — by the nightly sweep, by a mutation-survivor hunt, by a one-off
deep search — should keep guarding the tree forever.  This module closes
that loop:

* :func:`run_campaign` fans a roster of cells out through the sharded
  explorer (:mod:`repro.explore.sharding`), with the cross-run digest
  cache making repeat campaigns incremental;
* :func:`pin_regression` turns a :class:`~repro.explore.engine.Finding`
  into a pytest module under ``tests/regressions/`` following the repo's
  pinned-cell convention (module-level ``CELL`` and ``MINIMIZED``
  constants, replay + neighbourhood assertions) — the same shape the
  determinism harness scans for;
* :func:`hunt_schedule` is the mutation-feedback half: given a shadow
  source tree with a survivor mutant applied, it searches for a schedule
  that distinguishes mutant from pristine — a fresh detection problem for
  the mutation suite and, ddmin-shrunk, a candidate pinned regression.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.explore.cache import DigestCache
from repro.explore.engine import ExploreResult, Finding
from repro.explore.sharding import explore_cell_sharded

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("_", text.lower()).strip("_")


#: Default adversarial roster: every protocol variant's clean cell plus
#: the sabotage cells (which must *stay* caught under every interleaving)
#: and the tractable fault cells.
def default_roster(n: int = 3, seed: int = 0) -> list[str]:
    cells = [
        f"paper:{variant}:none:n{n}p1q1:s{seed}"
        for variant in ("base", "mc", "cd", "ct", "cr")
    ]
    cells += [
        f"paper:base:none:n{n}p1q1:s{seed}:sab-{kind}"
        for kind in ("disagree", "double", "count")
    ]
    cells += [
        f"paper:ct:crash_participant:n{n}p1q1:s{seed}",
        f"paper:ct:crash_resolver:n{n}p1q1:s{seed}",
    ]
    return cells


def run_campaign(
    cells: Sequence[str],
    mode: str = "dfs",
    workers: Optional[int] = None,
    split_depth: int = 4,
    cache: Optional[DigestCache] = None,
    max_runs: int = 20000,
    schedules: int = 200,
    bound: int = 2,
    seed: int = 0,
) -> list[ExploreResult]:
    """Explore every cell; returns one result per cell, in roster order.

    Cells are explored sequentially (each exploration shards internally);
    a shared ``cache`` makes the second campaign over the same roster
    mostly lookups.
    """
    results = []
    for cell in cells:
        results.append(
            explore_cell_sharded(
                cell, mode=mode, workers=workers, split_depth=split_depth,
                cache=cache, max_runs=max_runs, schedules=schedules,
                bound=bound, seed=seed,
            )
        )
    return results


# -- pinned regressions --------------------------------------------------------------

_PIN_TEMPLATE = '''"""Pinned explorer counterexample: {title}.

Auto-emitted by ``repro.explore.campaign.pin_regression`` from a finding
of the adversarial exploration campaign ({origin}).  At pin time the
schedule below produced::

    classification: {classification}
    violations:     {violations}

against a FIFO baseline of ``{baseline_classification}``.  Once the
defect is fixed this module keeps guarding the tree: the schedule must
replay to the FIFO baseline digest bit-for-bit, forever.

Repro:

    {repro}
"""

from repro.explore import run_digest

CELL = "{cell}"

#: The ddmin-minimized counterexample schedule.
MINIMIZED = "{minimized}"


def test_minimized_counterexample_schedule_is_green():
    baseline = run_digest(CELL)
    outcome = run_digest(CELL, MINIMIZED)
    assert outcome.classification == baseline.classification, (
        outcome.violations
    )
    assert outcome.digest == baseline.digest


def test_replay_is_deterministic():
    first = run_digest(CELL, MINIMIZED)
    second = run_digest(CELL, MINIMIZED)
    assert first.trace_hash == second.trace_hash
    assert first.digest == second.digest
'''


def pin_regression(
    finding: Finding,
    out_dir,
    origin: str = "exploration campaign",
    name: Optional[str] = None,
) -> Path:
    """Write a pinned-regression pytest module for ``finding``.

    The emitted module follows the repo convention (module-level ``CELL``
    / ``MINIMIZED``, replay assertions) so the determinism harness and
    the CI regression job pick it up with no registration step.  Returns
    the written path; an existing file with the same name is left
    untouched (pins are append-only).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = name or f"pinned_{_slug(finding.cell_id)}_{_slug(finding.minimized)}"
    path = out / f"test_{_slug(stem)}.py"
    if path.exists():
        return path
    body = _PIN_TEMPLATE.format(
        title=f"{finding.cell_id} under {finding.minimized}",
        origin=origin,
        classification=finding.classification,
        violations=", ".join(finding.violations) or "(digest divergence)",
        baseline_classification="the same cell under FIFO",
        repro=finding.repro_command(),
        cell=finding.cell_id,
        minimized=finding.minimized,
    )
    path.write_text(body)
    return path


def pin_campaign_findings(
    results: Sequence[ExploreResult],
    out_dir,
    origin: str = "exploration campaign",
) -> list[Path]:
    """Pin every finding of a campaign; returns the written paths."""
    written = []
    for result in results:
        for finding in result.findings:
            written.append(pin_regression(finding, out_dir, origin=origin))
    return written


# -- mutation feedback ---------------------------------------------------------------

_HUNT_SNIPPET = """
import json, sys
from repro.explore.engine import explore_cell

result = explore_cell(
    {cell!r}, mode={mode!r}, schedules={schedules}, seed={seed},
    bound={bound}, max_runs={max_runs},
)
print(json.dumps({{
    "findings": [f.to_payload() for f in result.findings],
    "baseline_classification": result.baseline.classification,
    "baseline_digest": repr(result.baseline.digest),
    "schedules_run": result.schedules_run,
    "exhaustive": result.exhaustive,
}}))
"""


def hunt_schedule(
    shadow_src: Path,
    cell: str,
    mode: str = "delay",
    bound: int = 2,
    schedules: int = 200,
    seed: int = 0,
    max_runs: int = 3000,
    timeout: float = 600.0,
) -> dict:
    """Search a *mutated* tree for a schedule distinguishing it from FIFO.

    Runs the serial explorer inside a subprocess whose ``PYTHONPATH``
    points at ``shadow_src`` (a copy of ``src/`` with one mutant applied,
    as built by ``benchmarks/mutation_smoke.py``).  Any finding is a
    schedule under which the mutant diverges *within its own tree* — an
    order-sensitivity the mutant introduced.  Each finding's minimized
    schedule is then a fresh, targeted detection problem: replayed on the
    pristine tree it must match the pristine FIFO digest, so the suite
    acquires a new kill vector for this mutant class.

    Returns the subprocess's JSON payload plus ``ok``/``error`` keys.
    """
    code = _HUNT_SNIPPET.format(
        cell=cell, mode=mode, schedules=schedules, seed=seed, bound=bound,
        max_runs=max_runs,
    )
    try:
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=timeout,
            env={"PYTHONPATH": str(shadow_src), "PATH": "/usr/bin:/bin"},
        )
    except subprocess.TimeoutExpired:
        return {"ok": False, "error": "timeout", "findings": []}
    if proc.returncode != 0:
        # A mutant that crashes the explorer outright is detected by the
        # ordinary digest problems; the hunt reports it and moves on.
        return {
            "ok": False,
            "error": proc.stderr.strip()[-2000:],
            "findings": [],
        }
    import json

    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    payload["ok"] = True
    payload["error"] = None
    return payload
