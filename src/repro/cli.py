"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``formulas N P Q`` — print the Section 4.4 closed-form predictions;
* ``run N P Q``      — simulate one workload and compare with the model;
* ``chart {example1,example2,figure3}`` — replay a worked example and
  render its message-sequence chart;
* ``compare``        — the new algorithm vs the CR baseline (O(N²) vs O(N³));
* ``fuzz``           — random nested-scenario invariant checking;
* ``trace``          — run a scenario and export its causal span forest
  (plain tree, JSONL, or Chrome trace-event JSON for Perfetto);
* ``metrics``        — run a scenario and print its metrics registry;
* ``explore``        — schedule-space exploration of a campaign cell
  (exhaustive DFS / random walks / delay-bounded), or replay of one
  schedule string from a counterexample;
* ``rt``             — the real-concurrency backend: ``rt conformance``
  runs the sim-vs-asyncio digest comparison, ``rt run`` executes one
  campaign cell on a chosen backend (optionally over localhost TCP),
  ``rt hub`` serves a standalone frame-routing hub for multi-process
  experiments;
* ``service``        — the resolution service: ``service serve`` runs the
  long-running CA-action resolution server (bounded admission, slow-start
  token bucket, OVERLOADED shedding, live stats endpoint),
  ``service load`` drives it with open-loop Poisson/bursty traffic and
  prints goodput, shed counts and latency percentiles.

The pytest-benchmark harness under ``benchmarks/`` remains the canonical
reproduction; this CLI is the quick, dependency-free way to poke at the
system.
"""

from __future__ import annotations

import argparse
import sys


def cmd_formulas(args: argparse.Namespace) -> int:
    from repro.analysis import (
        general_messages,
        multicast_operations,
        resolver_group_messages,
    )

    n, p, q = args.n, args.p, args.q
    print(f"N={n} participants, P={p} raisers, Q={q} nested objects")
    print(f"  base algorithm      (N-1)(2P+3Q+1) = {general_messages(n, p, q)}")
    for k in (2, 3):
        print(
            f"  k={k} resolvers       (N-1)(2P+3Q+{k}) = "
            f"{resolver_group_messages(n, p, q, k)}"
        )
    print(f"  multicast variant   N+Q+1 ops       = {multicast_operations(n, p, q)}")
    print(f"  CR baseline         O(N^3) (measured, not closed-form)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis import general_messages
    from repro.workloads.generator import general_case

    result = general_case(args.n, args.p, args.q, seed=args.seed).run()
    measured = result.resolution_message_total()
    expected = general_messages(args.n, args.p, args.q)
    print(f"workload: N={args.n} P={args.p} Q={args.q} seed={args.seed}")
    print(f"  resolution messages: {measured} (model {expected})"
          f" {'OK' if measured == expected else 'MISMATCH'}")
    print(f"  per kind: {dict(result.messages_for_action('A1'))}")
    commits = result.commit_entries("A1")
    if commits:
        print(f"  resolver: {commits[0].subject} -> "
              f"{commits[0].details['exception']}")
    print(f"  status: {result.status('A1').value}; "
          f"virtual duration {result.duration:.1f}")
    return 0 if measured == expected else 1


def cmd_chart(args: argparse.Namespace) -> int:
    from repro.analysis import render_sequence_chart
    from repro.workloads.generator import (
        example1_scenario,
        example2_scenario,
        figure3_scenario,
    )

    scenarios = {
        "example1": (example1_scenario, ["O1", "O2", "O3"]),
        "example2": (example2_scenario, ["O1", "O2", "O3", "O4"]),
        "figure3": (figure3_scenario, ["O0", "O1", "O2", "O3"]),
    }
    factory, lanes = scenarios[args.scenario]
    result = factory().run()
    print(render_sequence_chart(result.runtime.trace, lanes, max_rows=args.rows))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import fit_power_law
    from repro.core.cr_baseline import run_cr_concurrent
    from repro.workloads.generator import all_raise_case

    sweep = [int(x) for x in args.sweep.split(",")]
    print(f"{'N':>4} {'CR msgs':>10} {'new msgs':>10} {'ratio':>7}")
    cr_points, new_points = [], []
    for n in sweep:
        cr = run_cr_concurrent(n).total_messages()
        new = all_raise_case(n).run().resolution_message_total()
        cr_points.append((n, cr))
        new_points.append((n, new))
        print(f"{n:>4} {cr:>10} {new:>10} {cr / new:>6.1f}x")
    if len(sweep) >= 2:
        cr_fit = fit_power_law(cr_points)
        new_fit = fit_power_law(new_points)
        print(
            f"growth: CR ~ N^{cr_fit.exponent:.2f}, "
            f"new ~ N^{new_fit.exponent:.2f} (paper: O(N^3) vs O(N^2))"
        )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.workloads.fuzz import build_random_scenario, check_invariants

    failures = 0
    for seed in range(args.start, args.start + args.count):
        scenario, plan = build_random_scenario(
            seed, n_participants=args.participants, max_depth=args.depth
        )
        try:
            result = scenario.run(max_events=600_000)
            problems = check_invariants(result, plan)
        except Exception as exc:  # report, keep fuzzing
            problems = [f"{type(exc).__name__}: {exc}"]
        if problems:
            failures += 1
            print(f"FAIL seed={seed}: {problems}")
            print(f"     {plan.describe()}")
        elif args.verbose:
            print(f"ok   seed={seed}: {plan.describe()}")
    print(f"{args.count - failures}/{args.count} scenarios upheld all invariants")
    return 1 if failures else 0


#: Scenarios the observability commands can run.  Worked examples replay
#: the paper's sections; ``general`` is the N/P/Q workload; ``ct``/``mc``/
#: ``cd`` run the protocol variants on the same workload shape.
TRACEABLE_SCENARIOS = (
    "example1", "example2", "figure3", "general", "ct", "mc", "cd",
)


def _run_traced_scenario(args: argparse.Namespace):
    """Run the requested scenario at FULL trace; returns its Runtime."""
    name = args.scenario
    if name in ("example1", "example2", "figure3"):
        from repro.workloads import generator

        factory = {
            "example1": generator.example1_scenario,
            "example2": generator.example2_scenario,
            "figure3": generator.figure3_scenario,
        }[name]
        return factory().run().runtime
    if name == "general":
        from repro.workloads.generator import general_case

        return general_case(args.n, args.p, args.q, seed=args.seed).run().runtime
    if name == "ct":
        from repro.core.crash_tolerant import run_crash_tolerant

        return run_crash_tolerant(
            args.n, raisers=args.p, nested=args.q, seed=args.seed
        ).runtime
    if name == "mc":
        from repro.core.multicast_variant import run_multicast_resolution

        return run_multicast_resolution(
            args.n, p=args.p, q=args.q, seed=args.seed
        ).runtime
    if name == "cd":
        from repro.core.centralized_variant import run_centralized

        return run_centralized(args.n, raisers=args.p, seed=args.seed).runtime
    raise ValueError(f"unknown scenario {name}")  # pragma: no cover


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        render_span_tree,
        spans_to_chrome,
        spans_to_jsonl,
        validate_chrome_trace,
    )

    runtime = _run_traced_scenario(args)
    spans = runtime.spans
    problems = spans.forest_problems()
    for problem in problems:
        print(f"span-forest problem: {problem}", file=sys.stderr)
    if args.format == "tree":
        text = render_span_tree(spans)
    elif args.format == "jsonl":
        text = spans_to_jsonl(spans)
    else:
        doc = spans_to_chrome(spans, process_name=f"repro:{args.scenario}")
        schema_issues = validate_chrome_trace(doc)
        for issue in schema_issues:
            print(f"trace-event schema issue: {issue}", file=sys.stderr)
        problems.extend(schema_issues)
        text = json.dumps(doc, indent=1)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(
            f"{len(spans)} spans ({args.format}) -> {args.output}"
            + (" [load in Perfetto / chrome://tracing]"
               if args.format == "chrome" else "")
        )
    else:
        print(text)
    return 1 if problems else 0


def cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs import metrics_to_text

    runtime = _run_traced_scenario(args)
    snapshot = runtime.metrics_snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(metrics_to_text(snapshot))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    import json

    from repro.explore import explore_cell, run_digest
    from repro.explore.engine import DEFAULT_WINDOW, export_schedule_trace

    window = DEFAULT_WINDOW if args.window is None else tuple(args.window)
    if args.schedule is not None:
        # Replay one schedule (the one-line repro from a finding).
        outcome = run_digest(args.cell, args.schedule, window=window)
        payload = {
            "cell": outcome.cell_id,
            "schedule": outcome.schedule,
            "classification": outcome.classification,
            "violations": list(outcome.violations),
            "digest": repr(outcome.digest),
            "choice_points": outcome.choice_points,
            "trace_hash": outcome.trace_hash,
        }
        if args.artifacts:
            paths = export_schedule_trace(
                args.cell, args.schedule, args.artifacts
            )
            payload["artifacts"] = [str(p) for p in paths]
        print(json.dumps(payload, indent=2))
        return 0 if outcome.classification == "OK" else 1

    sharded = (
        args.workers is not None
        or args.split_depth is not None
        or args.cache is not None
    )
    if sharded:
        from repro.explore import DigestCache, explore_cell_sharded

        cache = None
        if args.cache is not None:
            cache = DigestCache(args.cache)
        result = explore_cell_sharded(
            args.cell,
            mode=args.mode,
            schedules=args.schedules,
            seed=args.seed,
            bound=args.bound,
            max_runs=args.max_runs,
            window=window,
            por=not args.no_por,
            workers=args.workers,
            split_depth=args.split_depth if args.split_depth else 4,
            cache=cache,
        )
        if cache is not None:
            cache.close()
    else:
        result = explore_cell(
            args.cell,
            mode=args.mode,
            schedules=args.schedules,
            seed=args.seed,
            bound=args.bound,
            max_runs=args.max_runs,
            window=window,
            por=not args.no_por,
        )
    payload = result.to_payload()
    if args.artifacts and result.findings:
        exported = []
        for finding in result.findings:
            exported += [
                str(p)
                for p in export_schedule_trace(
                    args.cell, finding.minimized, args.artifacts
                )
            ]
        payload["artifacts"] = exported
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{payload['cell']} [{payload['mode']}] "
            f"schedules={payload['schedules_run']} pruned={payload['pruned']} "
            f"exhaustive={payload['exhaustive']} "
            f"digests={payload['distinct_digests']}"
        )
        for finding in result.findings:
            print(f"  {finding.classification}: {finding.minimized}")
            for violation in finding.violations:
                print(f"    {violation}")
            print(f"    repro: {finding.repro_command()}")
        if not result.findings:
            print("  all interleavings agree with the FIFO baseline")
    return 0 if result.ok else 1


def cmd_rt_conformance(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.rt import ProtocolHarness, conformance_cells
    from repro.rt.harness import fault_cells

    ns = tuple(int(x) for x in args.ns.split(","))
    backends = tuple(args.backends.split(","))
    harness = ProtocolHarness(backends=backends, time_scale=args.time_scale)
    trace_dir = Path(args.artifacts) if args.artifacts else None
    report = harness.run(
        conformance_cells(ns=ns, seed=args.seed), trace_dir=trace_dir
    )
    fault_report = None
    if args.faults:
        fault_harness = ProtocolHarness(
            backends=("asyncio",), time_scale=args.time_scale
        )
        fault_report = fault_harness.run(
            fault_cells(ns=ns, seed=args.seed), trace_dir=trace_dir
        )
    if args.json:
        payload = {"conformance": report.to_payload()}
        if fault_report is not None:
            payload["faults"] = fault_report.to_payload()
        print(json.dumps(payload, indent=2))
    else:
        for result in report.results:
            verdict = "MATCH" if result.healthy else "DIVERGED"
            runs = " ".join(
                f"{r.backend}={r.classification}" for r in result.runs
            )
            print(f"{verdict:8s} {result.cell.cell_id:42s} {runs}")
        if fault_report is not None:
            for result in fault_report.results:
                run = result.runs[0]
                verdict = "OK" if result.healthy else "BAD"
                print(f"{verdict:8s} {result.cell.cell_id:42s} "
                      f"asyncio={run.classification}")
    ok = report.ok and (fault_report is None or fault_report.ok)
    return 0 if ok else 1


def cmd_rt_run(args: argparse.Namespace) -> int:
    import json

    from repro.rt import ProtocolHarness, tcp_transport
    from repro.rt.harness import cell_horizon, oracle_digest
    from repro.workloads.campaigns import (
        classify_observation,
        observe_cell,
        parse_cell_id,
    )

    cell = parse_cell_id(args.cell)
    if args.tcp:
        if args.backend != "asyncio":
            print("--tcp requires --backend asyncio", file=sys.stderr)
            return 2
        with tcp_transport(time_scale=args.time_scale, mode=args.mode) as bridges:
            obs = observe_cell(cell, run_until=cell_horizon(cell))
        frames = sum(b.frames_delivered for b in bridges)
    else:
        harness = ProtocolHarness(
            backends=(args.backend,), time_scale=args.time_scale
        )
        run = harness.run_cell(cell, args.backend)
        print(json.dumps(
            {k: list(v) if isinstance(v, tuple) else v
             for k, v in run.digest.items()},
            indent=2,
        ))
        return 0 if run.classification in ("OK", "STALLED-EXPECTED") else 1
    classification, violations = classify_observation(cell, obs)
    digest = oracle_digest(cell, obs, classification, violations)
    digest["tcp_frames"] = frames
    print(json.dumps(
        {k: list(v) if isinstance(v, tuple) else v for k, v in digest.items()},
        indent=2,
    ))
    return 0 if classification in ("OK", "STALLED-EXPECTED") else 1


def cmd_rt_hub(args: argparse.Namespace) -> int:
    import asyncio

    from repro.rt.tcp import TcpHub

    hub = TcpHub(host=args.host, port=args.port)

    async def serve() -> None:
        task = asyncio.ensure_future(hub.serve())
        await hub.ready.wait()
        print(f"hub listening on {hub.host}:{hub.port}")
        await task

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_service_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import ResolutionServer

    server = ResolutionServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        initial_rate=args.initial_rate,
        max_rate=args.max_rate,
        flight_dir=Path(args.flight_dir) if args.flight_dir else None,
        flight_capacity=args.flight_capacity,
        stall_after=args.stall_after,
        p99_budget_ms=args.p99_budget_ms,
    )

    # The listener sets the real port before any request is served; print
    # it as soon as the loop starts so wrappers (benchmarks, CI smoke) can
    # connect to an ephemeral --port 0.
    def announce() -> None:
        if server.ready.is_set():
            print(
                f"service listening on {server.host}:{server.port}",
                flush=True,
            )
        else:
            server.kernel.loop.call_later(0.01, announce)

    server.kernel.loop.call_soon(announce)
    try:
        server.serve_forever(max_seconds=args.max_seconds)
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        # Bind/listen failure (port taken, privileged port, bad address):
        # one line, non-zero exit — not a traceback.
        print(
            f"serve failed on {args.host}:{args.port}: "
            f"{exc.strerror or exc}",
            file=sys.stderr,
        )
        return 1
    finally:
        snapshot = server.stats_snapshot()
        server.close()
    counters = snapshot.get("counters", {})
    print(
        "service stopped: "
        f"completed={counters.get('service.completed', 0)} "
        f"shed={counters.get('service.shed', 0)} "
        f"sessions={counters.get('service.sessions_opened', 0)}"
    )
    return 0


def cmd_service_load(args: argparse.Namespace) -> int:
    import json

    from repro.service import LoadSpec, request_shutdown, run_load

    spec = LoadSpec(
        rate=args.rate,
        duration=args.duration,
        arrivals=args.arrivals,
        connections=args.connections,
        mix=args.mix,
        max_n=args.max_n,
        variant=args.variant,
        seed=args.seed,
        drain_seconds=args.drain,
        trace=args.trace,
        engine_trace_every=args.engine_trace_every,
    )
    try:
        report = run_load(args.host, args.port, spec, fetch_stats=args.stats)
    except (TimeoutError, OSError) as exc:
        # Unreachable/refused/wedged server: a load run that never got off
        # the ground is an error message, not a traceback.
        print(f"service load failed: {exc}", file=sys.stderr)
        return 1
    payload = report.to_payload()
    if args.stats:
        payload["server_stats"] = report.server_stats
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        lat = payload["latency_ms"]

        def ms(value):
            return f"{value:.1f}ms" if value is not None else "n/a"

        print(
            f"offered {args.rate:.0f}/s for {args.duration:.0f}s "
            f"({args.arrivals}, mix={args.mix}, variant={args.variant})"
        )
        print(
            f"  submitted={report.submitted} completed={report.completed} "
            f"shed={report.shed} errors={report.errors} "
            f"unanswered={report.unanswered}"
        )
        print(
            f"  goodput={report.goodput:.1f}/s  latency p50={ms(lat['p50'])} "
            f"p90={ms(lat['p90'])} p99={ms(lat['p99'])}  "
            f"max in-flight={report.max_inflight}"
        )
    if args.shutdown:
        try:
            acked = request_shutdown(args.host, args.port)
        except (TimeoutError, OSError) as exc:
            print(f"shutdown request failed: {exc}", file=sys.stderr)
            return 1
        # With --json, stdout is machine-readable; status goes to stderr.
        print(
            f"shutdown {'acknowledged' if acked else 'NOT acknowledged'}",
            file=sys.stderr if args.json else sys.stdout,
        )
    return 0 if report.completed and not report.errors else 1


def cmd_service_stats(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import time

    from repro.obs import metrics_to_text
    from repro.service import fetch_server_stats

    def fetch() -> dict:
        return asyncio.run(
            fetch_server_stats(args.host, args.port, timeout=args.timeout)
        )

    try:
        snapshot = fetch()
    except (TimeoutError, OSError) as exc:
        print(f"stats fetch failed: {exc}", file=sys.stderr)
        return 1
    if args.watch is None:
        print(json.dumps(snapshot, indent=2) if args.json
              else metrics_to_text(snapshot))
        return 0
    # Watch mode: poll at the given interval and render *deltas* — what a
    # dashboard wants (current throughput, queue depth, fresh sheds), not
    # monotonically growing totals.
    previous, previous_at = snapshot, time.monotonic()
    remaining = args.count
    try:
        while remaining is None or remaining > 0:
            time.sleep(args.watch)
            try:
                snapshot = fetch()
            except (TimeoutError, OSError) as exc:
                print(f"stats fetch failed: {exc}", file=sys.stderr)
                return 1
            now_at = time.monotonic()
            elapsed = max(now_at - previous_at, 1e-9)
            counters = snapshot.get("counters", {})
            prev_counters = previous.get("counters", {})
            gauges = snapshot.get("gauges", {})

            def delta(name):
                return counters.get(name, 0) - prev_counters.get(name, 0)

            line = (
                f"rate={delta('service.completed') / elapsed:7.1f}/s  "
                f"shed=+{delta('service.shed')}"
                f" (total {counters.get('service.shed', 0)})  "
                f"queue={gauges.get('service.queue_depth', 0):.0f}  "
                f"admit={gauges.get('service.admit_rate', 0):.0f}/s  "
                f"flight-dumps={counters.get('service.flight.dumps', 0)}"
            )
            if args.json:
                print(json.dumps({
                    "interval_seconds": round(elapsed, 3),
                    "completed_per_second":
                        round(delta("service.completed") / elapsed, 1),
                    "shed_delta": delta("service.shed"),
                    "shed_total": counters.get("service.shed", 0),
                    "queue_depth": gauges.get("service.queue_depth", 0),
                    "admit_rate": gauges.get("service.admit_rate", 0),
                    "flight_dumps":
                        counters.get("service.flight.dumps", 0),
                }))
            else:
                print(time.strftime("[%H:%M:%S] ") + line, flush=True)
            previous, previous_at = snapshot, now_at
            if remaining is not None:
                remaining -= 1
    except KeyboardInterrupt:
        pass
    return 0


def cmd_service_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import render_span_tree, spans_to_chrome, validate_chrome_trace
    from repro.service import ActionRequest, run_traced_requests

    requests = [
        ActionRequest(
            id=index, variant=args.variant, n=args.n, p=args.p, q=args.q,
            seed=args.seed + index, trace=not args.no_engine,
        )
        for index in range(args.count)
    ]
    try:
        spans, outcomes = run_traced_requests(
            args.host, args.port, requests, timeout=args.timeout
        )
    except (TimeoutError, OSError) as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        doc = spans_to_chrome(spans, process_name="service-trace")
        problems = validate_chrome_trace(doc)
        if problems:
            print(f"chrome trace INVALID: {problems[:3]}", file=sys.stderr)
            return 1
        Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")
        print(f"chrome trace written to {args.out}", file=sys.stderr)
    # Render wall-clock spans relative to the first send, in milliseconds —
    # raw loop.time() epochs are unreadable.
    if len(spans):
        origin = min(span.start for span in spans)
        for span in spans:
            span.start = round((span.start - origin) * 1000.0, 3)
            if span.end is not None:
                span.end = round((span.end - origin) * 1000.0, 3)
    if args.json:
        print(json.dumps({"outcomes": outcomes}, indent=2, default=str))
    else:
        print(render_span_tree(spans))
        for outcome in outcomes:
            print(
                f"request {outcome.get('id')}: {outcome.get('type')} "
                f"status={outcome.get('status', '-')} "
                f"latency={outcome.get('latency_ms', 0.0):.2f}ms"
            )
    bad = [o for o in outcomes if o.get("type") not in ("outcome", "overloaded")]
    return 1 if bad else 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import generate_report

    text = generate_report()
    if args.output:
        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0 if "DISCREPANCIES" not in text else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_formulas = sub.add_parser("formulas", help="Section 4.4 predictions")
    p_formulas.add_argument("n", type=int)
    p_formulas.add_argument("p", type=int)
    p_formulas.add_argument("q", type=int)
    p_formulas.set_defaults(fn=cmd_formulas)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("n", type=int)
    p_run.add_argument("p", type=int)
    p_run.add_argument("q", type=int)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(fn=cmd_run)

    p_chart = sub.add_parser("chart", help="sequence chart of a worked example")
    p_chart.add_argument(
        "scenario", choices=["example1", "example2", "figure3"]
    )
    p_chart.add_argument("--rows", type=int, default=300)
    p_chart.set_defaults(fn=cmd_chart)

    p_compare = sub.add_parser("compare", help="new algorithm vs CR baseline")
    p_compare.add_argument("--sweep", default="2,4,8,16")
    p_compare.set_defaults(fn=cmd_compare)

    p_report = sub.add_parser(
        "report", help="rerun the key experiments, emit a markdown report"
    )
    p_report.add_argument("--output", default=None)
    p_report.set_defaults(fn=cmd_report)

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("scenario", choices=TRACEABLE_SCENARIOS)
        p.add_argument("--n", type=int, default=4)
        p.add_argument("--p", type=int, default=2)
        p.add_argument("--q", type=int, default=0)
        p.add_argument("--seed", type=int, default=0)

    p_trace = sub.add_parser(
        "trace", help="export a scenario's causal span forest"
    )
    add_scenario_args(p_trace)
    p_trace.add_argument(
        "--format", choices=["tree", "jsonl", "chrome"], default="tree"
    )
    p_trace.add_argument("--output", "-o", default=None)
    p_trace.set_defaults(fn=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="print a scenario's metrics registry"
    )
    add_scenario_args(p_metrics)
    p_metrics.add_argument("--json", action="store_true")
    p_metrics.set_defaults(fn=cmd_metrics)

    p_explore = sub.add_parser(
        "explore", help="schedule-space exploration of a campaign cell"
    )
    p_explore.add_argument(
        "--cell", required=True,
        help="campaign cell id, e.g. paper:ct:none:n3p1q1:s0",
    )
    p_explore.add_argument(
        "--mode", choices=("dfs", "random", "delay"), default="dfs"
    )
    p_explore.add_argument(
        "--schedule", default=None,
        help="replay one schedule string (fifo | rw:<seed> | ch:<pos>=<idx>,...)",
    )
    p_explore.add_argument("--schedules", type=int, default=200,
                           help="random walks to run (mode=random)")
    p_explore.add_argument("--seed", type=int, default=0)
    p_explore.add_argument("--bound", type=int, default=2,
                           help="max deviations from FIFO (mode=delay)")
    p_explore.add_argument("--max-runs", type=int, default=5000)
    p_explore.add_argument(
        "--window", type=float, nargs=2, metavar=("START", "END"),
        default=None, help="exploration window in sim time",
    )
    p_explore.add_argument(
        "--workers", type=int, default=None,
        help="shard the search across a process pool (default: serial engine)",
    )
    p_explore.add_argument(
        "--split-depth", type=int, default=None,
        help="choice-point depth at which DFS frontiers shard (default 4)",
    )
    p_explore.add_argument(
        "--cache", default=None, metavar="FILE",
        help="persistent cross-run digest cache (append-only jsonl)",
    )
    p_explore.add_argument("--no-por", action="store_true",
                           help="disable partial-order reduction (dfs)")
    p_explore.add_argument("--artifacts", default=None,
                           help="directory for counterexample span traces")
    p_explore.add_argument("--json", action="store_true")
    p_explore.set_defaults(fn=cmd_explore)

    p_rt = sub.add_parser(
        "rt", help="real-concurrency backend (asyncio timers, TCP wire)"
    )
    rt_sub = p_rt.add_subparsers(dest="rt_command", required=True)

    p_conf = rt_sub.add_parser(
        "conformance", help="sim-vs-asyncio oracle-digest comparison"
    )
    p_conf.add_argument("--ns", default="2,3,5",
                        help="comma-separated participant counts")
    p_conf.add_argument("--backends", default="sim,asyncio")
    p_conf.add_argument("--time-scale", type=float, default=0.005,
                        help="wall seconds per virtual unit (asyncio)")
    p_conf.add_argument("--seed", type=int, default=0)
    p_conf.add_argument("--faults", action="store_true",
                        help="also run the asyncio drop/crash cells")
    p_conf.add_argument("--artifacts", default=None,
                        help="directory for span traces on divergence")
    p_conf.add_argument("--json", action="store_true")
    p_conf.set_defaults(fn=cmd_rt_conformance)

    p_rt_run = rt_sub.add_parser(
        "run", help="one campaign cell on a real backend"
    )
    p_rt_run.add_argument("--cell", required=True,
                          help="campaign cell id, e.g. paper:ct:none:n3p1q1:s0")
    p_rt_run.add_argument("--backend", choices=("sim", "asyncio"),
                          default="asyncio")
    p_rt_run.add_argument("--time-scale", type=float, default=0.005)
    p_rt_run.add_argument("--tcp", action="store_true",
                          help="route every delivery over a localhost socket")
    p_rt_run.add_argument("--mode", choices=("token", "pickle"),
                          default="token", help="TCP frame mode")
    p_rt_run.set_defaults(fn=cmd_rt_run)

    p_hub = rt_sub.add_parser(
        "hub", help="standalone TCP frame hub (multi-process experiments)"
    )
    p_hub.add_argument("--host", default="127.0.0.1")
    p_hub.add_argument("--port", type=int, default=9321)
    p_hub.set_defaults(fn=cmd_rt_hub)

    p_service = sub.add_parser(
        "service", help="CA-action resolution service (server + loadgen)"
    )
    service_sub = p_service.add_subparsers(dest="service_command", required=True)

    p_serve = service_sub.add_parser(
        "serve", help="run the long-running resolution server"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9400,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--queue-limit", type=int, default=2048,
                         help="admission queue slots (the in-flight bound)")
    p_serve.add_argument("--initial-rate", type=float, default=100.0,
                         help="slow-start starting admission rate (actions/s)")
    p_serve.add_argument("--max-rate", type=float, default=20000.0)
    p_serve.add_argument("--max-seconds", type=float, default=None,
                         help="stop after this much wall time (default: run "
                              "until a shutdown frame or Ctrl-C)")
    p_serve.add_argument("--flight-dir", default=None,
                         help="directory for flight-recorder trace dumps "
                              "(default: in-memory ring only, no files)")
    p_serve.add_argument("--flight-capacity", type=int, default=256,
                         help="completed request traces kept in the ring")
    p_serve.add_argument("--stall-after", type=float, default=30.0,
                         help="seconds before an open request counts as "
                              "stalled (fires a flight-recorder dump)")
    p_serve.add_argument("--p99-budget-ms", type=float, default=None,
                         help="rolling p99 latency budget in ms; breaches "
                              "fire a flight-recorder dump (default: off)")
    p_serve.set_defaults(fn=cmd_service_serve)

    p_load = service_sub.add_parser(
        "load", help="open-loop traffic generator against a running server"
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=9400)
    p_load.add_argument("--rate", type=float, default=500.0,
                        help="offered actions/sec (open loop)")
    p_load.add_argument("--duration", type=float, default=10.0)
    p_load.add_argument("--arrivals", choices=("poisson", "bursty"),
                        default="poisson")
    p_load.add_argument("--connections", type=int, default=4)
    p_load.add_argument("--mix", choices=("heavy", "small", "uniform"),
                        default="heavy", help="action-size distribution")
    p_load.add_argument("--max-n", type=int, default=32,
                        help="largest action in the mix")
    p_load.add_argument("--variant", choices=("base", "ct", "mc", "cd"),
                        default="base")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--drain", type=float, default=5.0,
                        help="seconds to wait for straggler replies")
    p_load.add_argument("--stats", action="store_true",
                        help="fetch the server's live metrics snapshot")
    p_load.add_argument("--shutdown", action="store_true",
                        help="send a shutdown frame after the run")
    p_load.add_argument("--trace", action="store_true",
                        help="attach distributed-trace context to every "
                             "request and join the server spans client-side")
    p_load.add_argument("--engine-trace-every", type=int, default=0,
                        help="with --trace: request an engine-level FULL "
                             "span forest on every Nth request (0 = never)")
    p_load.add_argument("--json", action="store_true")
    p_load.set_defaults(fn=cmd_service_load)

    p_sstats = service_sub.add_parser(
        "stats", help="fetch (or continuously watch) a server's metrics"
    )
    p_sstats.add_argument("--host", default="127.0.0.1")
    p_sstats.add_argument("--port", type=int, default=9400)
    p_sstats.add_argument("--watch", type=float, default=None, metavar="SEC",
                          help="poll every SEC seconds, printing deltas "
                               "(rate, queue depth, fresh sheds)")
    p_sstats.add_argument("--count", type=int, default=None,
                          help="with --watch: stop after this many samples "
                               "(default: until Ctrl-C)")
    p_sstats.add_argument("--timeout", type=float, default=5.0,
                          help="per-fetch wall-clock timeout in seconds")
    p_sstats.add_argument("--json", action="store_true")
    p_sstats.set_defaults(fn=cmd_service_stats)

    p_trace = service_sub.add_parser(
        "trace", help="submit traced requests and print the span forest"
    )
    p_trace.add_argument("--host", default="127.0.0.1")
    p_trace.add_argument("--port", type=int, default=9400)
    p_trace.add_argument("--count", type=int, default=1,
                         help="requests to submit (sequentially)")
    p_trace.add_argument("--variant", choices=("base", "ct", "mc", "cd"),
                         default="base")
    p_trace.add_argument("-n", type=int, default=6, help="participants")
    p_trace.add_argument("-p", type=int, default=2, help="raisers")
    p_trace.add_argument("-q", type=int, default=1, help="nested members")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--no-engine", action="store_true",
                         help="skip the engine-level FULL span forest "
                              "(wall-clock stages only)")
    p_trace.add_argument("--timeout", type=float, default=5.0,
                         help="per-request reply timeout in seconds")
    p_trace.add_argument("--out", default=None, metavar="PATH",
                         help="also write the forest as Chrome trace JSON")
    p_trace.add_argument("--json", action="store_true",
                         help="print raw outcome frames instead of the tree")
    p_trace.set_defaults(fn=cmd_service_trace)

    p_fuzz = sub.add_parser("fuzz", help="random-scenario invariant check")
    p_fuzz.add_argument("--count", type=int, default=50)
    p_fuzz.add_argument("--start", type=int, default=0)
    p_fuzz.add_argument("--participants", type=int, default=4)
    p_fuzz.add_argument("--depth", type=int, default=3)
    p_fuzz.add_argument("--verbose", action="store_true")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
