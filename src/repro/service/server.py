"""The long-running CA-action resolution server.

:class:`ResolutionServer` turns the repo's protocol engines into a
persistent network service on the :class:`~repro.rt.kernel.AsyncioKernel`:
clients open TCP sessions, submit action requests as length-prefixed JSON
frames (:mod:`repro.service.protocol`), and receive resolution outcomes
asynchronously — many in-flight actions multiplexed on one kernel.

Load discipline (the part the paper's batch campaigns never needed):

* **Bounded admission queue** — accepted requests wait in a FIFO of
  ``queue_limit`` slots shared by every session; worker coroutines drain
  it.  The queue *is* the in-flight buffer: its depth is the live signal
  of how far offered load exceeds service capacity.
* **Slow-start token bucket** — admission is additionally rate-limited by
  :class:`TokenBucket`.  The admitted rate starts low (``initial_rate``)
  and grows multiplicatively while the queue stays shallow; when the
  queue crowds past its high watermark the rate is cut.  The bucket
  therefore *converges on the server's measured capacity* instead of
  trusting a static configuration — classic slow-start/AIMD, applied to
  admission instead of a congestion window.
* **Load shedding** — a request that finds the bucket empty or the queue
  full is answered immediately with an ``overloaded`` frame (never
  silently dropped), so open-loop clients can distinguish goodput from
  shed work and back off.  Under overload the server keeps completing
  admitted work at capacity: goodput degrades to the service rate, not to
  zero.

Observability: a per-server :class:`~repro.obs.metrics.MetricsRegistry`
(counters for submitted/accepted/shed/completed, wall-clock latency and
per-stage breakdown histograms, queue/rate gauges) served live over the
same frame protocol by ``stats`` requests, as JSON or rendered text.

Tracing (PR 8): every request gets a wall-clock span tree — queue-wait /
execute / serialize / reply under one root — held by an always-on
:class:`~repro.service.flight.FlightRecorder` (ring of the last K
completed traces plus all open ones) that dumps Chrome-trace/JSONL
artifacts when a shed, p99-budget breach, stalled request or protocol
error fires.  A client that sends ``trace_id``/``parent_span`` header
fields joins its request to the server trace (the span records come back
on the ``outcome`` frame); ``trace: true`` additionally runs the engine
at FULL and nests the protocol-level span forest under the execute span.
"""

from __future__ import annotations

import asyncio
import contextlib
from pathlib import Path
from typing import Optional

from repro.obs.export import metrics_to_text
from repro.obs.metrics import (
    MS_LATENCY_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
)
from repro.obs.spans import TraceContext
from repro.rt.kernel import AsyncioKernel
from repro.rt.tcp import MAX_FRAME, FrameError, encode_frame, read_frame
from repro.service.flight import FlightRecorder
from repro.service.protocol import (
    ActionRequest,
    ServiceProtocolError,
    execute_request,
    execute_request_traced,
    rescale_records,
)

#: Wall-clock latency buckets (milliseconds) for the service histograms:
#: log-spaced so sub-millisecond stage timings and multi-second overload
#: queue waits resolve on one axis (the old linear-ish edges binned every
#: stage under 1 ms into a single bucket).
MS_BUCKETS = MS_LATENCY_BUCKETS

#: Action-size buckets (participants per action) for the mix histogram.
N_BUCKETS = (2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0, 128.0)


class TokenBucket:
    """Admission rate limiter with slow-start adaptation.

    Tokens refill continuously at ``rate`` per second up to one second's
    worth (``burst``).  :meth:`adjust` implements the control loop: grow
    the rate while the queue is shallow, cut it when the queue crowds —
    see the module docstring.
    """

    def __init__(
        self,
        initial_rate: float = 100.0,
        max_rate: float = 20_000.0,
        min_rate: float = 50.0,
        growth: float = 1.5,
        backoff: float = 0.7,
    ) -> None:
        if not 0 < min_rate <= initial_rate <= max_rate:
            raise ValueError(
                f"need 0 < min_rate <= initial_rate <= max_rate, got "
                f"{min_rate}/{initial_rate}/{max_rate}"
            )
        self.rate = initial_rate
        self.max_rate = max_rate
        self.min_rate = min_rate
        self.growth = growth
        self.backoff = backoff
        self._tokens = initial_rate  # start with one second of burst
        self._last = 0.0
        self._primed = False

    def _refill(self, now: float) -> None:
        if not self._primed:
            self._last, self._primed = now, True
            return
        self._tokens = min(
            self.rate, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_take(self, now: float) -> bool:
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def adjust(self, queue_occupancy: float) -> None:
        """One control tick: slow-start up, multiplicative cut on crowding."""
        if queue_occupancy > 0.75:
            self.rate = max(self.min_rate, self.rate * self.backoff)
        elif queue_occupancy < 0.25:
            self.rate = min(self.max_rate, self.rate * self.growth)


class ResolutionServer:
    """Serve CA-action resolution over localhost TCP (see module docstring).

    Args:
        host, port: listen address (``port=0`` picks a free port, readable
            from ``self.port`` once ``ready`` is set).
        workers: concurrent queue-drainer coroutines.  Engine runs are
            synchronous CPU work, so workers add *multiplexing* across
            sessions (and overlap with socket I/O), not parallelism.
        queue_limit: admission queue slots (the in-flight bound).
        initial_rate / max_rate / min_rate: token-bucket parameters.
        pacer_interval: wall seconds between slow-start control ticks.
        max_frame: per-frame byte ceiling (protocol hardening).
        flight_dir: directory for flight-recorder dumps (``None`` keeps
            the ring in memory but writes no artifacts).
        flight_capacity: completed request traces retained in the ring.
        stall_after: wall seconds before an open request trace counts as
            stalled (fires the ``stall`` trigger).
        p99_budget_ms: rolling per-pacer-tick p99 latency budget; a tick
            whose completed-request p99 exceeds it fires ``p99-breach``
            (``None`` disables the check).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_limit: int = 2048,
        initial_rate: float = 100.0,
        max_rate: float = 20_000.0,
        min_rate: float = 50.0,
        pacer_interval: float = 0.25,
        max_frame: int = MAX_FRAME,
        flight_dir: Optional[Path] = None,
        flight_capacity: int = 256,
        stall_after: float = 30.0,
        p99_budget_ms: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"need a positive queue limit, got {queue_limit}")
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.queue_limit = queue_limit
        self.pacer_interval = pacer_interval
        self.p99_budget_ms = p99_budget_ms
        self.bucket = TokenBucket(
            initial_rate=initial_rate, max_rate=max_rate, min_rate=min_rate
        )
        # time_scale=1.0: one virtual unit == one wall second, so
        # ``run(until=max_seconds)`` and pacer arithmetic read naturally.
        self.kernel = AsyncioKernel(time_scale=1.0)
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(
            capacity=flight_capacity, dump_dir=flight_dir,
            stall_after=stall_after,
        )
        self._p99_prev_buckets: Optional[list[int]] = None
        self.ready = asyncio.Event()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: set[asyncio.Task] = set()
        self._stopping = False
        self._started_wall: Optional[float] = None
        self.kernel.add_service(self._serve)
        self.kernel.add_service(self._pacer)
        for _ in range(workers):
            self.kernel.add_service(self._worker)

    # -- lifecycle ---------------------------------------------------------------

    def serve_forever(self, max_seconds: Optional[float] = None) -> None:
        """Run until :meth:`stop` (or ``max_seconds`` of wall time).

        Blocks the calling thread.  The kernel would otherwise consider an
        idle server quiescent, so the server holds one lifetime token for
        the duration.
        """
        self.kernel.hold()
        try:
            self.kernel.run(until=max_seconds)
        finally:
            # Released unless stop() already did (idempotent bookkeeping).
            if not self._stopping:
                self._stopping = True
                with contextlib.suppress(Exception):
                    self.kernel.release()

    def stop(self) -> None:
        """Stop from inside the loop: no new work, release the lifetime hold."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
        self.kernel.release()

    def request_stop(self) -> None:
        """Thread-safe stop for embedding hosts (tests, benchmarks)."""
        self.kernel.loop.call_soon_threadsafe(self.stop)

    def close(self) -> None:
        self.kernel.close()

    # -- the listener service ----------------------------------------------------

    async def _serve(self) -> None:
        self._started_wall = self.kernel.loop.time()
        try:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, self.port
            )
        except OSError as exc:
            # Bind/listen failure: a service-task exception would die
            # silently; fail() re-raises it from serve_forever() instead.
            self.kernel.fail(exc)
            return
        self.port = self._server.sockets[0].getsockname()[1]
        self.ready.set()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            raise
        finally:
            sessions = [t for t in self._sessions if not t.done()]
            for task in sessions:
                task.cancel()
            if sessions:
                with contextlib.suppress(Exception):
                    await asyncio.gather(*sessions, return_exceptions=True)
            self._sessions.clear()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._sessions.add(task)
        self.metrics.counter("service.sessions_opened").inc()
        try:
            await self._session(reader, writer)
        except asyncio.CancelledError:
            # Server stopping.  Exit normally rather than re-raise: the
            # asyncio streams machinery calls ``task.exception()`` on this
            # task from a plain callback and would log a spurious
            # ``CancelledError`` per open session otherwise.
            pass
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer vanished (possibly mid-frame)
        except Exception as exc:  # noqa: BLE001 — surface through run()
            self.kernel.fail(exc)
        finally:
            if task is not None:
                self._sessions.discard(task)
            self.metrics.counter("service.sessions_closed").inc()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                header, _ = await read_frame(reader, self.max_frame)
            except FrameError as exc:
                # A misbehaving client gets a clean protocol error and its
                # session closed; the server (and every other session)
                # keeps running.
                self.metrics.counter("service.protocol_errors").inc()
                self.flight.trigger(
                    "protocol-error", self.kernel.loop.time(), detail=str(exc)
                )
                self._reply(writer, {"type": "error", "reason": str(exc)})
                with contextlib.suppress(Exception):
                    await writer.drain()
                return
            kind = header.get("type")
            if kind == "submit":
                self._on_submit(header, writer)
            elif kind == "stats":
                self._on_stats(header, writer)
            elif kind == "ping":
                self._reply(writer, {"type": "pong"})
            elif kind == "shutdown":
                self._reply(writer, {"type": "bye"})
                with contextlib.suppress(Exception):
                    await writer.drain()
                self.stop()
                return
            else:
                self.metrics.counter("service.protocol_errors").inc()
                self._reply(
                    writer,
                    {"type": "error", "reason": f"unknown frame type {kind!r}"},
                )
            await writer.drain()

    # -- request handling ----------------------------------------------------------

    def _reply(self, writer: asyncio.StreamWriter, header: dict) -> None:
        if not writer.is_closing():
            writer.write(encode_frame(header))

    def _on_submit(self, header: dict, writer: asyncio.StreamWriter) -> None:
        metrics = self.metrics
        metrics.counter("service.submitted").inc()
        try:
            request = ActionRequest.from_header(header)
        except ServiceProtocolError as exc:
            metrics.counter("service.rejected").inc()
            self._reply(
                writer,
                {"type": "error", "id": header.get("id"), "reason": str(exc)},
            )
            return
        now = self.kernel.loop.time()
        # Missing/malformed context parses to None → fresh root trace;
        # tracing never turns a request into a protocol error.
        context = TraceContext.from_header(header)
        trace = self.flight.start(now, request_id=request.id, context=context)
        if self._stopping or not self.bucket.try_take(now) or self._queue.full():
            metrics.counter("service.shed").inc()
            self.flight.finish(trace, self.kernel.loop.time(), "shed")
            self.flight.trigger("shed", now, detail=f"request {request.id}")
            reply = {
                "type": "overloaded",
                "id": request.id,
                "queue": self._queue.qsize(),
                "rate": round(self.bucket.rate, 1),
            }
            if context is not None:
                reply["trace_id"] = trace.trace_id
            self._reply(writer, reply)
            return
        metrics.counter("service.accepted").inc()
        trace.begin_stage("queue-wait", now, queue_depth=self._queue.qsize())
        self._queue.put_nowait((request, writer, now, trace, context))

    async def _worker(self) -> None:
        metrics = self.metrics
        loop = self.kernel.loop
        latency = metrics.histogram("service.latency_ms", MS_BUCKETS)
        queue_wait = metrics.histogram("service.queue_wait_ms", MS_BUCKETS)
        execute_ms = metrics.histogram("service.execute_ms", MS_BUCKETS)
        serialize_ms = metrics.histogram("service.serialize_ms", MS_BUCKETS)
        reply_ms = metrics.histogram("service.reply_ms", MS_BUCKETS)
        sizes = metrics.histogram("service.action_n", N_BUCKETS)
        while True:
            request, writer, enqueued, trace, context = await self._queue.get()
            dequeued = loop.time()
            queue_wait.observe((dequeued - enqueued) * 1000.0)
            trace.begin_stage("execute", dequeued, variant=request.variant,
                              n=request.n, p=request.p, q=request.q)
            try:
                if request.trace:
                    outcome, engine_records = execute_request_traced(request)
                else:
                    outcome, engine_records = execute_request(request), None
            except Exception as exc:  # noqa: BLE001 — engine bug: report, survive
                metrics.counter("service.engine_errors").inc()
                self.flight.finish(trace, loop.time(), "error")
                self._reply(
                    writer,
                    {
                        "type": "error", "id": request.id,
                        "reason": f"{type(exc).__name__}: {exc}",
                    },
                )
                continue
            executed = loop.time()
            if engine_records is not None:
                # Nest the engine's virtual-time forest inside the
                # wall-clock execute window.
                rescale_records(
                    engine_records, dequeued, executed,
                    max(outcome.sim_duration, 1e-9),
                )
                trace.graft_engine(engine_records)
            trace.end_stage(executed, status=outcome.status)
            execute_ms.observe((executed - dequeued) * 1000.0)

            trace.begin_stage("serialize", executed)
            reply = outcome.to_header()
            if context is not None:
                # The client is tracing: echo the trace id and ship the
                # server-side span records so it can graft them into one
                # connected forest.  The shipped copy is closed at the
                # serialize timestamp (the reply span happens after the
                # bytes leave; it stays in the flight recorder).
                serialized = loop.time()
                trace.end_stage(serialized)
                records = trace.to_records()
                for record in records:
                    if record["end"] is None:
                        record["end"] = serialized
                reply["trace_id"] = trace.trace_id
                reply["spans"] = records
            else:
                serialized = loop.time()
                trace.end_stage(serialized)
            serialize_ms.observe((serialized - executed) * 1000.0)

            metrics.counter("service.completed").inc()
            metrics.counter(f"service.completed.{request.variant}").inc()
            latency.observe((serialized - enqueued) * 1000.0)
            sizes.observe(request.n)
            metrics.histogram("service.sim_duration").observe(
                outcome.sim_duration
            )
            trace.begin_stage("reply", serialized)
            self._reply(writer, reply)
            if not writer.is_closing():
                with contextlib.suppress(
                    ConnectionResetError, BrokenPipeError
                ):
                    await writer.drain()
            replied = loop.time()
            reply_ms.observe((replied - serialized) * 1000.0)
            self.flight.finish(trace, replied, outcome.status)
            # One engine run is a synchronous burst; yield so session
            # readers interleave even when the queue never empties.
            await asyncio.sleep(0)

    # -- control loop & stats --------------------------------------------------------

    async def _pacer(self) -> None:
        while True:
            await asyncio.sleep(self.pacer_interval)
            now = self.kernel.loop.time()
            self.bucket.adjust(self._queue.qsize() / self.queue_limit)
            gauges = self.metrics
            gauges.gauge("service.queue_depth").set(self._queue.qsize())
            gauges.gauge("service.admit_rate").set(self.bucket.rate)
            self.flight.check_stalls(now)
            self._check_p99_budget(now)

    def _check_p99_budget(self, now: float) -> None:
        """Fire ``p99-breach`` when this tick's completed-request p99
        exceeds the budget (estimated from the latency histogram's bucket
        deltas since the previous tick — no per-request storage)."""
        if self.p99_budget_ms is None:
            return
        hist = self.metrics.histogram("service.latency_ms", MS_BUCKETS)
        buckets = list(hist.bucket_counts)
        prev, self._p99_prev_buckets = self._p99_prev_buckets, buckets
        if prev is None:
            return
        delta = [b - p for b, p in zip(buckets, prev)]
        count = sum(delta)
        if not count:
            return
        estimate = histogram_quantile(
            {
                "bounds": list(hist.bounds), "bucket_counts": delta,
                "count": count, "min": None, "max": hist.max,
            },
            0.99,
        )
        if estimate is not None and estimate > self.p99_budget_ms:
            self.metrics.counter("service.p99_breaches").inc()
            self.flight.trigger(
                "p99-breach", now,
                detail=f"p99≈{estimate:g}ms > budget {self.p99_budget_ms:g}ms",
            )

    def stats_snapshot(self) -> dict:
        """The live registry snapshot, gauges refreshed at call time."""
        metrics = self.metrics
        metrics.gauge("service.queue_depth").set(self._queue.qsize())
        metrics.gauge("service.admit_rate").set(self.bucket.rate)
        if self._started_wall is not None:
            metrics.gauge("service.uptime_seconds").set(
                self.kernel.loop.time() - self._started_wall
            )
        flight = self.flight
        for reason, count in flight.trigger_counts.items():
            metrics.counter(f"service.flight.trigger.{reason}").value = count
        metrics.counter("service.flight.dumps").value = len(flight.dumps)
        metrics.counter("service.flight.suppressed").value = flight.suppressed
        metrics.gauge("service.flight.open_traces").set(
            len(flight.open_traces())
        )
        metrics.gauge("service.flight.completed_traces").set(
            len(flight.completed_traces())
        )
        return metrics.snapshot()

    def _on_stats(self, header: dict, writer: asyncio.StreamWriter) -> None:
        snapshot = self.stats_snapshot()
        if header.get("format") == "text":
            self._reply(
                writer, {"type": "stats", "text": metrics_to_text(snapshot)}
            )
        else:
            self._reply(writer, {"type": "stats", "snapshot": snapshot})
