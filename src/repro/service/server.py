"""The long-running CA-action resolution server.

:class:`ResolutionServer` turns the repo's protocol engines into a
persistent network service on the :class:`~repro.rt.kernel.AsyncioKernel`:
clients open TCP sessions, submit action requests as length-prefixed JSON
frames (:mod:`repro.service.protocol`), and receive resolution outcomes
asynchronously — many in-flight actions multiplexed on one kernel.

Load discipline (the part the paper's batch campaigns never needed):

* **Bounded admission queue** — accepted requests wait in a FIFO of
  ``queue_limit`` slots shared by every session; worker coroutines drain
  it.  The queue *is* the in-flight buffer: its depth is the live signal
  of how far offered load exceeds service capacity.
* **Slow-start token bucket** — admission is additionally rate-limited by
  :class:`TokenBucket`.  The admitted rate starts low (``initial_rate``)
  and grows multiplicatively while the queue stays shallow; when the
  queue crowds past its high watermark the rate is cut.  The bucket
  therefore *converges on the server's measured capacity* instead of
  trusting a static configuration — classic slow-start/AIMD, applied to
  admission instead of a congestion window.
* **Load shedding** — a request that finds the bucket empty or the queue
  full is answered immediately with an ``overloaded`` frame (never
  silently dropped), so open-loop clients can distinguish goodput from
  shed work and back off.  Under overload the server keeps completing
  admitted work at capacity: goodput degrades to the service rate, not to
  zero.

Observability: a per-server :class:`~repro.obs.metrics.MetricsRegistry`
(counters for submitted/accepted/shed/completed, wall-clock latency and
action-size histograms, queue/rate gauges) served live over the same
frame protocol by ``stats`` requests, as JSON or rendered text.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Optional

from repro.obs.export import metrics_to_text
from repro.obs.metrics import MetricsRegistry
from repro.rt.kernel import AsyncioKernel
from repro.rt.tcp import MAX_FRAME, FrameError, encode_frame, read_frame
from repro.service.protocol import (
    ActionRequest,
    ServiceProtocolError,
    execute_request,
)

#: Wall-clock latency buckets (milliseconds): sub-millisecond admission
#: through multi-second queue waits under overload.
MS_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0,
)

#: Action-size buckets (participants per action) for the mix histogram.
N_BUCKETS = (2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0, 128.0)


class TokenBucket:
    """Admission rate limiter with slow-start adaptation.

    Tokens refill continuously at ``rate`` per second up to one second's
    worth (``burst``).  :meth:`adjust` implements the control loop: grow
    the rate while the queue is shallow, cut it when the queue crowds —
    see the module docstring.
    """

    def __init__(
        self,
        initial_rate: float = 100.0,
        max_rate: float = 20_000.0,
        min_rate: float = 50.0,
        growth: float = 1.5,
        backoff: float = 0.7,
    ) -> None:
        if not 0 < min_rate <= initial_rate <= max_rate:
            raise ValueError(
                f"need 0 < min_rate <= initial_rate <= max_rate, got "
                f"{min_rate}/{initial_rate}/{max_rate}"
            )
        self.rate = initial_rate
        self.max_rate = max_rate
        self.min_rate = min_rate
        self.growth = growth
        self.backoff = backoff
        self._tokens = initial_rate  # start with one second of burst
        self._last = 0.0
        self._primed = False

    def _refill(self, now: float) -> None:
        if not self._primed:
            self._last, self._primed = now, True
            return
        self._tokens = min(
            self.rate, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_take(self, now: float) -> bool:
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def adjust(self, queue_occupancy: float) -> None:
        """One control tick: slow-start up, multiplicative cut on crowding."""
        if queue_occupancy > 0.75:
            self.rate = max(self.min_rate, self.rate * self.backoff)
        elif queue_occupancy < 0.25:
            self.rate = min(self.max_rate, self.rate * self.growth)


class ResolutionServer:
    """Serve CA-action resolution over localhost TCP (see module docstring).

    Args:
        host, port: listen address (``port=0`` picks a free port, readable
            from ``self.port`` once ``ready`` is set).
        workers: concurrent queue-drainer coroutines.  Engine runs are
            synchronous CPU work, so workers add *multiplexing* across
            sessions (and overlap with socket I/O), not parallelism.
        queue_limit: admission queue slots (the in-flight bound).
        initial_rate / max_rate / min_rate: token-bucket parameters.
        pacer_interval: wall seconds between slow-start control ticks.
        max_frame: per-frame byte ceiling (protocol hardening).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_limit: int = 2048,
        initial_rate: float = 100.0,
        max_rate: float = 20_000.0,
        min_rate: float = 50.0,
        pacer_interval: float = 0.25,
        max_frame: int = MAX_FRAME,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"need a positive queue limit, got {queue_limit}")
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.queue_limit = queue_limit
        self.pacer_interval = pacer_interval
        self.bucket = TokenBucket(
            initial_rate=initial_rate, max_rate=max_rate, min_rate=min_rate
        )
        # time_scale=1.0: one virtual unit == one wall second, so
        # ``run(until=max_seconds)`` and pacer arithmetic read naturally.
        self.kernel = AsyncioKernel(time_scale=1.0)
        self.metrics = MetricsRegistry()
        self.ready = asyncio.Event()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: set[asyncio.Task] = set()
        self._stopping = False
        self._started_wall: Optional[float] = None
        self.kernel.add_service(self._serve)
        self.kernel.add_service(self._pacer)
        for _ in range(workers):
            self.kernel.add_service(self._worker)

    # -- lifecycle ---------------------------------------------------------------

    def serve_forever(self, max_seconds: Optional[float] = None) -> None:
        """Run until :meth:`stop` (or ``max_seconds`` of wall time).

        Blocks the calling thread.  The kernel would otherwise consider an
        idle server quiescent, so the server holds one lifetime token for
        the duration.
        """
        self.kernel.hold()
        try:
            self.kernel.run(until=max_seconds)
        finally:
            # Released unless stop() already did (idempotent bookkeeping).
            if not self._stopping:
                self._stopping = True
                with contextlib.suppress(Exception):
                    self.kernel.release()

    def stop(self) -> None:
        """Stop from inside the loop: no new work, release the lifetime hold."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
        self.kernel.release()

    def request_stop(self) -> None:
        """Thread-safe stop for embedding hosts (tests, benchmarks)."""
        self.kernel.loop.call_soon_threadsafe(self.stop)

    def close(self) -> None:
        self.kernel.close()

    # -- the listener service ----------------------------------------------------

    async def _serve(self) -> None:
        self._started_wall = self.kernel.loop.time()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.ready.set()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            raise
        finally:
            sessions = [t for t in self._sessions if not t.done()]
            for task in sessions:
                task.cancel()
            if sessions:
                with contextlib.suppress(Exception):
                    await asyncio.gather(*sessions, return_exceptions=True)
            self._sessions.clear()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._sessions.add(task)
        self.metrics.counter("service.sessions_opened").inc()
        try:
            await self._session(reader, writer)
        except asyncio.CancelledError:
            # Server stopping.  Exit normally rather than re-raise: the
            # asyncio streams machinery calls ``task.exception()`` on this
            # task from a plain callback and would log a spurious
            # ``CancelledError`` per open session otherwise.
            pass
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer vanished (possibly mid-frame)
        except Exception as exc:  # noqa: BLE001 — surface through run()
            self.kernel.fail(exc)
        finally:
            if task is not None:
                self._sessions.discard(task)
            self.metrics.counter("service.sessions_closed").inc()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                header, _ = await read_frame(reader, self.max_frame)
            except FrameError as exc:
                # A misbehaving client gets a clean protocol error and its
                # session closed; the server (and every other session)
                # keeps running.
                self.metrics.counter("service.protocol_errors").inc()
                self._reply(writer, {"type": "error", "reason": str(exc)})
                with contextlib.suppress(Exception):
                    await writer.drain()
                return
            kind = header.get("type")
            if kind == "submit":
                self._on_submit(header, writer)
            elif kind == "stats":
                self._on_stats(header, writer)
            elif kind == "ping":
                self._reply(writer, {"type": "pong"})
            elif kind == "shutdown":
                self._reply(writer, {"type": "bye"})
                with contextlib.suppress(Exception):
                    await writer.drain()
                self.stop()
                return
            else:
                self.metrics.counter("service.protocol_errors").inc()
                self._reply(
                    writer,
                    {"type": "error", "reason": f"unknown frame type {kind!r}"},
                )
            await writer.drain()

    # -- request handling ----------------------------------------------------------

    def _reply(self, writer: asyncio.StreamWriter, header: dict) -> None:
        if not writer.is_closing():
            writer.write(encode_frame(header))

    def _on_submit(self, header: dict, writer: asyncio.StreamWriter) -> None:
        metrics = self.metrics
        metrics.counter("service.submitted").inc()
        try:
            request = ActionRequest.from_header(header)
        except ServiceProtocolError as exc:
            metrics.counter("service.rejected").inc()
            self._reply(
                writer,
                {"type": "error", "id": header.get("id"), "reason": str(exc)},
            )
            return
        now = self.kernel.loop.time()
        if self._stopping or not self.bucket.try_take(now) or self._queue.full():
            metrics.counter("service.shed").inc()
            self._reply(
                writer,
                {
                    "type": "overloaded",
                    "id": request.id,
                    "queue": self._queue.qsize(),
                    "rate": round(self.bucket.rate, 1),
                },
            )
            return
        metrics.counter("service.accepted").inc()
        self._queue.put_nowait((request, writer, now))

    async def _worker(self) -> None:
        metrics = self.metrics
        latency = metrics.histogram("service.latency_ms", MS_BUCKETS)
        sizes = metrics.histogram("service.action_n", N_BUCKETS)
        while True:
            request, writer, enqueued = await self._queue.get()
            try:
                outcome = execute_request(request)
            except Exception as exc:  # noqa: BLE001 — engine bug: report, survive
                metrics.counter("service.engine_errors").inc()
                self._reply(
                    writer,
                    {
                        "type": "error", "id": request.id,
                        "reason": f"{type(exc).__name__}: {exc}",
                    },
                )
                continue
            metrics.counter("service.completed").inc()
            metrics.counter(f"service.completed.{request.variant}").inc()
            latency.observe(
                (self.kernel.loop.time() - enqueued) * 1000.0
            )
            sizes.observe(request.n)
            metrics.histogram("service.sim_duration").observe(
                outcome.sim_duration
            )
            self._reply(writer, outcome.to_header())
            if not writer.is_closing():
                with contextlib.suppress(
                    ConnectionResetError, BrokenPipeError
                ):
                    await writer.drain()
            # One engine run is a synchronous burst; yield so session
            # readers interleave even when the queue never empties.
            await asyncio.sleep(0)

    # -- control loop & stats --------------------------------------------------------

    async def _pacer(self) -> None:
        while True:
            await asyncio.sleep(self.pacer_interval)
            self.bucket.adjust(self._queue.qsize() / self.queue_limit)
            gauges = self.metrics
            gauges.gauge("service.queue_depth").set(self._queue.qsize())
            gauges.gauge("service.admit_rate").set(self.bucket.rate)

    def stats_snapshot(self) -> dict:
        """The live registry snapshot, gauges refreshed at call time."""
        metrics = self.metrics
        metrics.gauge("service.queue_depth").set(self._queue.qsize())
        metrics.gauge("service.admit_rate").set(self.bucket.rate)
        if self._started_wall is not None:
            metrics.gauge("service.uptime_seconds").set(
                self.kernel.loop.time() - self._started_wall
            )
        return metrics.snapshot()

    def _on_stats(self, header: dict, writer: asyncio.StreamWriter) -> None:
        snapshot = self.stats_snapshot()
        if header.get("format") == "text":
            self._reply(
                writer, {"type": "stats", "text": metrics_to_text(snapshot)}
            )
        else:
            self._reply(writer, {"type": "stats", "snapshot": snapshot})
