"""Always-on flight recorder: the last K request traces, dumped on trouble.

A production service cannot afford FULL tracing of every request, but the
moment something goes wrong — a shed, a latency-budget breach, a stalled
request, a misbehaving peer — the traces you want are precisely the ones
you just finished (or never finished).  The :class:`FlightRecorder` keeps a
bounded ring of the last ``capacity`` *completed* request traces plus every
still-open one, each a small wall-clock span tree (queue-wait / execute /
serialize / reply, plus the engine-level forest for requests that opted
into full tracing).  When a trigger fires it writes the whole buffer as a
Chrome trace-event JSON plus a JSONL span log through the standard
:mod:`repro.obs.export` machinery — the same artifacts the sim-side
campaign tooling produces, loadable in Perfetto.

Triggers (all counted per reason, all rate-limited by
``min_dump_interval`` so a shed storm produces one dump, not thousands):

* ``shed``            — the server answered ``overloaded``;
* ``p99-breach``      — the rolling p99 latency crossed the budget;
* ``stall``           — an open request trace outlived ``stall_after``;
* ``protocol-error``  — a malformed frame (service session or
  :class:`~repro.rt.tcp.TcpHub` via its ``on_protocol_error`` hook).

The recorder is clock-agnostic: callers pass ``now`` (wall seconds from
any monotonic epoch) into every method, so tests drive it with a fake
clock and the server passes ``loop.time()``.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Optional

from repro.obs.export import spans_to_chrome, spans_to_jsonl
from repro.obs.spans import SpanCollector, TraceContext

#: Trigger reasons the recorder recognises (anything else raises — a typo
#: in a trigger call should fail loudly, not silently miscount).
TRIGGER_REASONS = ("shed", "p99-breach", "stall", "protocol-error")


class RequestTrace:
    """One request's wall-clock span tree plus its lifecycle bookkeeping.

    Owns a private wall-clock :class:`SpanCollector` holding the request's
    root span and stage children.  ``remote_parent`` remembers the
    client-side parent span id (from the incoming :class:`TraceContext`)
    so the serialized records can be re-grafted client-side into one
    connected forest.
    """

    __slots__ = (
        "trace_id", "request_id", "spans", "root", "remote_parent",
        "started", "finished", "status", "_stage", "_key",
    )

    def __init__(
        self,
        trace_id: str,
        request_id: Optional[int],
        now: float,
        subject: str = "server",
        remote_parent: Optional[int] = None,
    ) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.remote_parent = remote_parent
        self.started = now
        self.finished: Optional[float] = None
        self.status: Optional[str] = None
        self._stage: Optional[int] = None
        self._key: Optional[int] = None  # recorder-internal open-set key
        self.spans = SpanCollector(clock="wall")
        label = f"request {request_id}" if request_id is not None else "request"
        self.root = self.spans.begin(
            label, "request", subject, now, trace_id=trace_id
        )

    @property
    def open(self) -> bool:
        return self.finished is None

    def begin_stage(self, name: str, now: float, **attrs) -> int:
        """Open a stage child span (closing any still-open previous stage)."""
        if self._stage is not None:
            self.spans.end(self._stage, now)
        self._stage = self.spans.begin(
            name, "stage", "server", now, parent=self.root, **attrs
        )
        return self._stage

    def end_stage(self, now: float, **attrs) -> None:
        self.spans.end(self._stage, now, **attrs)
        self._stage = None

    def graft_engine(self, records: list[dict]) -> None:
        """Attach an engine-level span forest under the current stage."""
        parent = self._stage if self._stage is not None else self.root
        self.spans.graft(records, parent=parent)

    def finish(self, now: float, status: str) -> None:
        """Close the trace (idempotent): open stage + root span both end."""
        if self.finished is not None:
            return
        if self._stage is not None:
            self.spans.end(self._stage, now)
            self._stage = None
        self.spans.end(self.root, now, status=status)
        self.finished = now
        self.status = status

    def to_records(self) -> list[dict]:
        """Wire shape for the ``spans`` field of a traced outcome frame."""
        return self.spans.to_records()

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, parent_span=self.root)


class FlightRecorder:
    """Bounded ring of request traces with triggered artifact dumps.

    Args:
        capacity: completed traces retained (oldest evicted first).
        dump_dir: where trigger dumps land; ``None`` records triggers and
            keeps the ring but writes no files (in-memory-only mode).
        stall_after: wall seconds an open trace may age before
            :meth:`check_stalls` fires the ``stall`` trigger.
        min_dump_interval: wall seconds between dumps; triggers inside the
            window are counted as ``suppressed`` instead of re-dumping.
    """

    def __init__(
        self,
        capacity: int = 256,
        dump_dir: Optional[Path] = None,
        stall_after: float = 30.0,
        min_dump_interval: float = 5.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"need a positive ring capacity, got {capacity}")
        self.capacity = capacity
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.stall_after = stall_after
        self.min_dump_interval = min_dump_interval
        self.trigger_counts: dict[str, int] = {}
        self.suppressed = 0
        self.dumps: list[Path] = []
        self._ring: deque[RequestTrace] = deque(maxlen=capacity)
        self._open: dict[int, RequestTrace] = {}
        self._next_key = 0
        self._last_dump: Optional[float] = None
        self._dump_seq = 0
        self._stalled_keys: set[int] = set()

    # -- trace lifecycle ---------------------------------------------------------

    def start(
        self,
        now: float,
        request_id: Optional[int] = None,
        context: Optional[TraceContext] = None,
        subject: str = "server",
    ) -> RequestTrace:
        """Open a trace for one request.

        With an incoming context the trace joins that distributed trace
        (same id, remote parent recorded); without one — including the
        malformed-context case, which parses to ``None`` — it becomes a
        fresh root trace.
        """
        if context is not None:
            trace = RequestTrace(
                context.trace_id, request_id, now, subject=subject,
                remote_parent=context.parent_span,
            )
        else:
            trace = RequestTrace(
                TraceContext.new().trace_id, request_id, now, subject=subject
            )
        key = self._next_key
        self._next_key += 1
        self._open[key] = trace
        trace._key = key
        return trace

    def finish(self, trace: RequestTrace, now: float, status: str) -> None:
        """Close a trace and move it from the open set into the ring."""
        trace.finish(now, status)
        key, trace._key = trace._key, None
        if key is not None and key in self._open:
            del self._open[key]
            self._stalled_keys.discard(key)
            self._ring.append(trace)

    def open_traces(self) -> list[RequestTrace]:
        return list(self._open.values())

    def completed_traces(self) -> list[RequestTrace]:
        return list(self._ring)

    # -- triggers ----------------------------------------------------------------

    def trigger(self, reason: str, now: float, detail: str = "") -> Optional[Path]:
        """Fire one trigger; dump the buffer unless rate-limited.

        Returns the Chrome-trace path when a dump was written, else
        ``None`` (rate-limited, or no ``dump_dir``).
        """
        if reason not in TRIGGER_REASONS:
            raise ValueError(
                f"unknown trigger reason {reason!r} "
                f"(expected one of {TRIGGER_REASONS})"
            )
        self.trigger_counts[reason] = self.trigger_counts.get(reason, 0) + 1
        if self.dump_dir is None:
            return None
        if (
            self._last_dump is not None
            and now - self._last_dump < self.min_dump_interval
        ):
            self.suppressed += 1
            return None
        self._last_dump = now
        return self._dump(reason, now, detail)

    def check_stalls(self, now: float) -> int:
        """Trigger ``stall`` for open traces older than ``stall_after``.

        Each trace stalls at most once (re-checking every pacer tick must
        not re-fire for the same wedged request).  Returns the number of
        *newly* stalled traces.
        """
        fresh = 0
        for key, trace in self._open.items():
            if key in self._stalled_keys:
                continue
            if now - trace.started >= self.stall_after:
                self._stalled_keys.add(key)
                fresh += 1
                self.trigger(
                    "stall", now,
                    detail=f"request {trace.request_id} open "
                    f"{now - trace.started:.1f}s",
                )
        return fresh

    # -- dumping -----------------------------------------------------------------

    def merged_collector(self) -> SpanCollector:
        """Every buffered trace (completed then open) as one wall forest."""
        merged = SpanCollector(clock="wall")
        for trace in list(self._ring) + list(self._open.values()):
            merged.graft(trace.to_records(), parent=None)
        return merged

    def _dump(self, reason: str, now: float, detail: str) -> Optional[Path]:
        merged = self.merged_collector()
        self._dump_seq += 1
        stem = f"flight-{self._dump_seq:04d}-{reason}"
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        doc = spans_to_chrome(merged, process_name=f"flight:{reason}")
        doc["otherData"]["trigger"] = reason
        doc["otherData"]["detail"] = detail
        doc["otherData"]["wall_now"] = now
        doc["otherData"]["completed_traces"] = len(self._ring)
        doc["otherData"]["open_traces"] = len(self._open)
        chrome_path = self.dump_dir / f"{stem}.trace.json"
        chrome_path.write_text(json.dumps(doc, indent=1) + "\n")
        jsonl_path = self.dump_dir / f"{stem}.spans.jsonl"
        jsonl_path.write_text(spans_to_jsonl(merged))
        self.dumps += [chrome_path, jsonl_path]
        return chrome_path
