"""Open-loop traffic generator for the resolution service.

Open-loop means arrivals are driven by a clock, not by completions: the
generator keeps submitting at the offered rate even when the server is
slow, so in-flight work grows without bound unless the server sheds —
exactly the regime that distinguishes a service under overload from a
closed batch campaign (which politely waits for every reply).

Arrival processes
    ``poisson`` — exponential inter-arrival times at the offered rate;
    ``bursty``  — an on/off modulated Poisson process: quiet phases at a
    fraction of the rate alternating with bursts at ``burst_factor``×,
    same long-run average.

Action-size mix (heavy-tailed by default)
    Participant counts are sampled from a Pareto tail clipped to
    ``max_n``: most actions are tiny (N=2..4), a few are large — the
    "millions of small users, occasional monster" shape.  Raisers and
    nested members are derived uniformly within the shape constraints.

Each submitted request is stamped with its send time; matching ``outcome``
/ ``overloaded`` replies produce per-request wall latencies, so the
:class:`LoadReport` can state goodput (completed actions/sec), shed rate
and p50/p90/p99 resolution latency.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.obs.spans import SpanCollector, TraceContext
from repro.rt.tcp import encode_frame, read_frame
from repro.service.protocol import ActionRequest

ARRIVALS = ("poisson", "bursty")
MIXES = ("heavy", "small", "uniform")

#: Default wall-clock timeout for one control-plane round-trip (stats,
#: shutdown).  A wedged server must produce a clean error, not a hang.
CONTROL_TIMEOUT = 5.0


async def _open_connection(host: str, port: int):
    """Connect to the service, turning raw socket errors into one clean
    :class:`ConnectionError` naming the endpoint — what a CLI can print
    on a single line instead of a traceback."""
    try:
        return await asyncio.open_connection(host, port)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise ConnectionError(
            f"cannot connect to resolution service at {host}:{port}: {reason}"
        ) from None


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop campaign against a running server."""

    rate: float = 500.0  # offered actions/sec (long-run average)
    duration: float = 10.0  # seconds of arrivals
    arrivals: str = "poisson"
    burst_factor: float = 6.0  # bursty: on-phase multiplier
    burst_on: float = 0.5  # seconds per burst phase
    burst_off: float = 1.5  # seconds per quiet phase
    connections: int = 4  # sessions to spread arrivals across
    mix: str = "heavy"
    max_n: int = 32
    variant: str = "base"
    seed: int = 0
    drain_seconds: float = 5.0  # post-arrival wait for straggler replies
    #: Attach distributed-trace context to every request: each submit
    #: carries a fresh trace id + the client root span id, the server's
    #: span records come back on the outcome frame and are grafted under
    #: the client root — one connected forest per request.
    trace: bool = False
    #: When tracing, additionally set ``trace: true`` (engine-level FULL
    #: span forest) on every Nth request per connection; 0 = never.
    engine_trace_every: int = 0

    def __post_init__(self) -> None:
        if self.arrivals not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrivals!r} "
                f"(expected one of {ARRIVALS})"
            )
        if self.mix not in MIXES:
            raise ValueError(
                f"unknown size mix {self.mix!r} (expected one of {MIXES})"
            )
        if self.rate <= 0 or self.duration <= 0 or self.connections < 1:
            raise ValueError(
                f"need positive rate/duration and >=1 connection, got "
                f"rate={self.rate} duration={self.duration} "
                f"connections={self.connections}"
            )


@dataclass
class LoadReport:
    """What one campaign observed (the benchmark's raw material)."""

    spec_rate: float
    duration: float
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    errors: int = 0
    unanswered: int = 0
    max_inflight: int = 0
    wall_seconds: float = 0.0
    latencies_ms: list = field(default_factory=list)
    statuses: dict = field(default_factory=dict)
    server_stats: Optional[dict] = None
    #: Client-side span forest (only when the spec enabled tracing).
    spans: Optional[SpanCollector] = field(default=None, repr=False)
    #: Outcomes whose echoed trace id did not match the request's own —
    #: any nonzero value means the server cross-linked traces.
    trace_mismatches: int = 0

    @property
    def goodput(self) -> float:
        """Completed actions per second of arrival window."""
        return self.completed / self.duration if self.duration else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Latency percentile in ms over completed actions (q in [0, 1])."""
        if not self.latencies_ms:
            return None
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_payload(self) -> dict:
        payload = {
            "offered_rate": self.spec_rate,
            "duration": self.duration,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "unanswered": self.unanswered,
            "goodput": round(self.goodput, 1),
            "max_inflight": self.max_inflight,
            "wall_seconds": round(self.wall_seconds, 3),
            "latency_ms": {
                "p50": self.percentile(0.50),
                "p90": self.percentile(0.90),
                "p99": self.percentile(0.99),
            },
            "statuses": dict(sorted(self.statuses.items())),
        }
        if self.spans is not None:
            payload["traced"] = True
            payload["trace_mismatches"] = self.trace_mismatches
            payload["client_spans"] = len(self.spans)
        return payload


# -- request shapes ---------------------------------------------------------------


def sample_request(rng: random.Random, spec: LoadSpec, req_id: int) -> ActionRequest:
    """One action request drawn from the spec's size mix."""
    if spec.mix == "small":
        n = rng.randint(2, 4)
    elif spec.mix == "uniform":
        n = rng.randint(2, spec.max_n)
    else:  # heavy: Pareto tail, mostly tiny with rare large actions
        n = min(spec.max_n, 1 + int(rng.paretovariate(1.6)))
        n = max(2, n)
    p = rng.randint(1, max(1, (n + 1) // 2))
    # cd is a flat variant; others get a sprinkling of nested members.
    q = 0 if spec.variant == "cd" else min(n - p, rng.randint(0, 2))
    return ActionRequest(
        id=req_id, variant=spec.variant, n=n, p=p, q=q,
        seed=rng.randrange(1 << 30),
    )


def arrival_times(rng: random.Random, spec: LoadSpec, rate: float) -> list[float]:
    """Relative arrival instants for one connection's share of the load."""
    times: list[float] = []
    t = 0.0
    if spec.arrivals == "poisson":
        while True:
            t += rng.expovariate(rate)
            if t >= spec.duration:
                return times
            times.append(t)
    # bursty: on/off phases; rates chosen so the long-run mean is `rate`.
    cycle = spec.burst_on + spec.burst_off
    on_weight = spec.burst_on * spec.burst_factor
    base_rate = rate * cycle / (on_weight + spec.burst_off)
    while True:
        phase = t % cycle
        current = (
            base_rate * spec.burst_factor if phase < spec.burst_on else base_rate
        )
        t += rng.expovariate(current)
        if t >= spec.duration:
            return times
        times.append(t)


# -- the generator ----------------------------------------------------------------


class _Campaign:
    """Shared mutable state across one run's connection tasks."""

    def __init__(self, spec: LoadSpec) -> None:
        self.spec = spec
        self.report = LoadReport(spec_rate=spec.rate, duration=spec.duration)
        self.pending: dict[int, float] = {}  # id -> send wall time
        self.inflight = 0
        self.spans: Optional[SpanCollector] = (
            SpanCollector(clock="wall") if spec.trace else None
        )
        # id -> (client root span id, trace id) for open traced requests.
        self.trace_roots: dict[int, tuple[int, str]] = {}

    def sent(self, req_id: int, now: float) -> Optional[TraceContext]:
        """Record a submit; returns the trace context to stamp on it."""
        self.pending[req_id] = now
        self.report.submitted += 1
        self.inflight += 1
        if self.inflight > self.report.max_inflight:
            self.report.max_inflight = self.inflight
        if self.spans is None:
            return None
        context = TraceContext.new()
        root = self.spans.begin(
            f"request {req_id}", "request", "client", now,
            trace_id=context.trace_id,
        )
        self.spans.event("send", "event", "client", now, parent=root)
        self.trace_roots[req_id] = (root, context.trace_id)
        return context.child(root)

    def answered(self, header: dict, now: float) -> None:
        req_id = header.get("id")
        sent_at = self.pending.pop(req_id, None)
        if sent_at is not None:
            self.inflight -= 1
        kind = header.get("type")
        if kind == "outcome":
            self.report.completed += 1
            status = header.get("status", "?")
            self.report.statuses[status] = self.report.statuses.get(status, 0) + 1
            if sent_at is not None:
                self.report.latencies_ms.append((now - sent_at) * 1000.0)
            self._join_trace(req_id, header, now, status)
        elif kind == "overloaded":
            self.report.shed += 1
            self._join_trace(req_id, header, now, "shed")
        else:
            self.report.errors += 1

    def _join_trace(
        self, req_id, header: dict, now: float, status: str
    ) -> None:
        """Graft the server's span records under the client root span."""
        if self.spans is None:
            return
        entry = self.trace_roots.pop(req_id, None)
        if entry is None:
            return
        root, trace_id = entry
        echoed = header.get("trace_id")
        if echoed is not None and echoed != trace_id:
            self.report.trace_mismatches += 1
        records = header.get("spans")
        if isinstance(records, list):
            self.spans.graft(records, parent=root)
        self.spans.end(root, now, status=status)


async def _connection(
    host: str, port: int, campaign: _Campaign, conn_index: int
) -> None:
    """One session: a paced sender plus a reply reader, then a drain wait."""
    spec = campaign.spec
    rng = random.Random(spec.seed * 100_003 + conn_index)
    schedule = arrival_times(rng, spec, spec.rate / spec.connections)
    reader, writer = await _open_connection(host, port)
    loop = asyncio.get_running_loop()
    done_sending = asyncio.Event()

    async def send() -> None:
        start = loop.time()
        seq = 0
        for offset in schedule:
            delay = start + offset - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            # Open loop: if we are behind schedule, send immediately —
            # never skip an arrival, never wait for replies.
            req_id = conn_index * 10_000_000 + seq
            seq += 1
            request = sample_request(rng, spec, req_id)
            if (
                spec.trace
                and spec.engine_trace_every > 0
                and seq % spec.engine_trace_every == 0
            ):
                request = replace(request, trace=True)
            context = campaign.sent(req_id, loop.time())
            header = request.to_header()
            if context is not None:
                header.update(context.to_fields())
            writer.write(encode_frame(header))
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await writer.drain()
        done_sending.set()

    async def receive() -> None:
        while True:
            header, _ = await read_frame(reader)
            campaign.answered(header, loop.time())

    sender = asyncio.ensure_future(send())
    receiver = asyncio.ensure_future(receive())
    try:
        await done_sending.wait()
        # Drain: give stragglers a bounded window, then stop reading.
        deadline = loop.time() + spec.drain_seconds
        while campaign.inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.05)
    finally:
        for task in (sender, receiver):
            task.cancel()
        await asyncio.gather(sender, receiver, return_exceptions=True)
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def _run_campaign(
    host: str, port: int, spec: LoadSpec, fetch_stats: bool
) -> LoadReport:
    campaign = _Campaign(spec)
    loop = asyncio.get_running_loop()
    started = loop.time()
    # return_exceptions keeps one refused connection from orphaning its
    # siblings mid-flight (un-retrieved task exceptions spray tracebacks);
    # collect everything, then surface the first failure as the verdict.
    results = await asyncio.gather(
        *(
            _connection(host, port, campaign, index)
            for index in range(spec.connections)
        ),
        return_exceptions=True,
    )
    for result in results:
        if isinstance(result, BaseException):
            raise result
    campaign.report.wall_seconds = loop.time() - started
    campaign.report.unanswered = len(campaign.pending)
    if campaign.spans is not None:
        # Close out roots of unanswered requests so the forest is clean.
        now = loop.time()
        for root, _trace_id in campaign.trace_roots.values():
            campaign.spans.end(root, now, status="unanswered")
        campaign.report.spans = campaign.spans
    if fetch_stats:
        campaign.report.server_stats = await fetch_server_stats(host, port)
    return campaign.report


def run_load(
    host: str, port: int, spec: LoadSpec, fetch_stats: bool = False
) -> LoadReport:
    """Drive one open-loop campaign against ``host:port`` (blocking)."""
    return asyncio.run(_run_campaign(host, port, spec, fetch_stats))


# -- control-plane helpers ---------------------------------------------------------


async def fetch_server_stats(
    host: str, port: int, timeout: float = CONTROL_TIMEOUT
) -> dict:
    """One ``stats`` round-trip on a fresh connection.

    Bounded by ``timeout`` wall seconds end to end; a wedged or
    unreachable server raises :class:`TimeoutError` with a clean message
    instead of hanging the caller.
    """

    async def go() -> dict:
        reader, writer = await _open_connection(host, port)
        try:
            writer.write(encode_frame({"type": "stats"}))
            await writer.drain()
            header, _ = await read_frame(reader)
            return header.get("snapshot", {})
        finally:
            writer.close()

    try:
        return await asyncio.wait_for(go(), timeout)
    except asyncio.TimeoutError:
        raise TimeoutError(
            f"stats request to {host}:{port} timed out after {timeout:.1f}s"
        ) from None


async def _traced_round_trips(
    host: str, port: int, requests: list[ActionRequest], timeout: float
) -> tuple[SpanCollector, list[dict]]:
    spans = SpanCollector(clock="wall")
    outcomes: list[dict] = []
    loop = asyncio.get_running_loop()
    reader, writer = await _open_connection(host, port)
    try:
        for request in requests:
            now = loop.time()
            context = TraceContext.new()
            root = spans.begin(
                f"request {request.id}", "request", "client", now,
                trace_id=context.trace_id,
            )
            spans.event("send", "event", "client", now, parent=root)
            header = request.to_header()
            header.update(context.child(root).to_fields())
            writer.write(encode_frame(header))
            await writer.drain()
            reply, _ = await asyncio.wait_for(read_frame(reader), timeout)
            arrived = loop.time()
            records = reply.get("spans")
            if isinstance(records, list):
                spans.graft(records, parent=root)
            status = reply.get("status", reply.get("type", "?"))
            spans.end(root, arrived, status=status)
            reply["latency_ms"] = (arrived - now) * 1000.0
            outcomes.append(reply)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
    return spans, outcomes


def run_traced_requests(
    host: str,
    port: int,
    requests: list[ActionRequest],
    timeout: float = CONTROL_TIMEOUT,
) -> tuple[SpanCollector, list[dict]]:
    """Submit ``requests`` one at a time with full trace context (blocking).

    Powers ``repro service trace``: each request gets a fresh trace id, the
    server's span records are grafted under the client root, and the
    replies (with a measured ``latency_ms``) come back alongside the
    merged wall-clock collector.
    """
    return asyncio.run(_traced_round_trips(host, port, requests, timeout))


def request_shutdown(
    host: str, port: int, timeout: float = CONTROL_TIMEOUT
) -> bool:
    """Ask a running server to stop; True if it acknowledged."""

    async def go() -> bool:
        reader, writer = await _open_connection(host, port)
        try:
            writer.write(encode_frame({"type": "shutdown"}))
            await writer.drain()
            header, _ = await read_frame(reader)
            return header.get("type") == "bye"
        finally:
            writer.close()

    async def bounded() -> bool:
        try:
            return await asyncio.wait_for(go(), timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"shutdown request to {host}:{port} timed out "
                f"after {timeout:.1f}s"
            ) from None

    return asyncio.run(bounded())
