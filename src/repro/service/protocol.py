"""Service wire protocol: action requests, outcomes, and their execution.

The resolution service speaks the same length-prefixed frame codec as the
:mod:`repro.rt.tcp` hub (JSON ``token`` mode only — no pickles from
untrusted peers).  Every frame header carries a ``"type"``:

client → server
    ``submit``     one CA-action request (see :class:`ActionRequest`);
    ``stats``      live :class:`~repro.obs.metrics.MetricsRegistry`
                   snapshot, ``format`` ``"json"`` (default) or ``"text"``;
    ``ping``       liveness probe;
    ``shutdown``   ask the server to drain and stop (localhost research
                   service — there is no auth layer to hide this behind).

server → client
    ``outcome``    the resolution result for one accepted ``submit``;
    ``overloaded`` the request was shed at admission (explicit reply, so
                   open-loop clients can count goodput vs shed);
    ``stats`` / ``pong`` / ``error`` / ``bye``.

Execution runs the *actual* protocol engines — each accepted request
builds and runs a deterministic simulation of the requested CA action
(variant, participants, raisers, nested members) at ``TraceLevel.COUNTS``,
then reduces it to an :class:`ActionOutcome`: resolved exception, handler
activations, commit/abort status, resolution message count.  COUNTS keeps
the per-action cost at a fraction of a millisecond for the small actions
that dominate a heavy-tailed mix; outcomes are extracted from the engine
state (managers, participants, network counters), never from FULL traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simkernel.trace import TraceLevel

#: Protocol variants the service can run, mapping to the repo's engines:
#: ``base`` — the Section 4.2 decentralised algorithm (supports nesting),
#: ``ct``   — the crash-tolerant extension,
#: ``mc``   — the Section 4.5 multicast variant,
#: ``cd``   — the Section 4.5 centralised variant (flat actions only).
SERVICE_VARIANTS = ("base", "ct", "mc", "cd")

#: Hard ceiling on participants per served action.  An N=128 action costs
#: tens of milliseconds of engine time; anything bigger belongs in the
#: batch campaign harness, not a live service.
MAX_PARTICIPANTS = 128


class ServiceProtocolError(ValueError):
    """A malformed or out-of-bounds service request header."""


@dataclass(frozen=True)
class ActionRequest:
    """One CA action to resolve on behalf of a client.

    ``n``/``p``/``q`` follow the paper's Section 4.4 workload shape:
    ``n`` participants of whom ``p`` raise concurrently and ``q`` sit in
    nested actions (``p + q <= n``; ``cd`` ignores ``q`` — it is a flat
    variant by construction).
    """

    id: int
    variant: str = "base"
    n: int = 3
    p: int = 1
    q: int = 0
    seed: int = 0
    #: Opt into an engine-level span forest: the request's resolution runs
    #: at ``TraceLevel.FULL`` and the server grafts the protocol spans
    #: under the request's execute span (and ships them back to a tracing
    #: client).  Off by default — FULL costs real time per action.
    trace: bool = False

    @staticmethod
    def from_header(header: dict) -> "ActionRequest":
        """Validate and build a request from a ``submit`` frame header."""
        try:
            req_id = int(header["id"])
        except (KeyError, TypeError, ValueError):
            raise ServiceProtocolError(
                f"submit needs an integer 'id': {header!r}"
            ) from None
        variant = header.get("variant", "base")
        if variant not in SERVICE_VARIANTS:
            raise ServiceProtocolError(
                f"unknown variant {variant!r} (expected one of {SERVICE_VARIANTS})"
            )
        try:
            n = int(header.get("n", 3))
            p = int(header.get("p", 1))
            q = int(header.get("q", 0))
            seed = int(header.get("seed", 0))
        except (TypeError, ValueError):
            raise ServiceProtocolError(
                f"non-integer action shape in {header!r}"
            ) from None
        if not 1 <= n <= MAX_PARTICIPANTS:
            raise ServiceProtocolError(
                f"n={n} outside [1, {MAX_PARTICIPANTS}]"
            )
        if not 1 <= p <= n:
            raise ServiceProtocolError(f"p={p} outside [1, n={n}]")
        if not 0 <= q <= n - p:
            raise ServiceProtocolError(f"q={q} outside [0, n-p={n - p}]")
        # Like the TraceContext fields, ``trace`` degrades rather than
        # rejects: any truthy value opts in, garbage opts out.
        return ActionRequest(
            id=req_id, variant=variant, n=n, p=p, q=q, seed=seed,
            trace=bool(header.get("trace", False)),
        )

    def to_header(self) -> dict:
        header = {
            "type": "submit", "id": self.id, "variant": self.variant,
            "n": self.n, "p": self.p, "q": self.q, "seed": self.seed,
        }
        if self.trace:
            header["trace"] = True
        return header


@dataclass(frozen=True)
class ActionOutcome:
    """What resolving one action produced (the ``outcome`` frame body)."""

    id: int
    variant: str
    status: str  # "committed" | "aborted" | "stalled"
    exception: Optional[str]  # resolved exception class name
    handlers: int  # participants that activated the resolved handler
    messages: int  # resolution messages (mc: multicast operations)
    sim_duration: float  # virtual time the action took

    def to_header(self) -> dict:
        return {
            "type": "outcome", "id": self.id, "variant": self.variant,
            "status": self.status, "exception": self.exception,
            "handlers": self.handlers, "messages": self.messages,
            "sim_duration": self.sim_duration,
        }

    @staticmethod
    def from_header(header: dict) -> "ActionOutcome":
        return ActionOutcome(
            id=int(header["id"]), variant=header["variant"],
            status=header["status"], exception=header.get("exception"),
            handlers=int(header["handlers"]), messages=int(header["messages"]),
            sim_duration=float(header["sim_duration"]),
        )


# -- execution --------------------------------------------------------------------


def _exc_name(exc) -> Optional[str]:
    if exc is None:
        return None
    return exc.name() if hasattr(exc, "name") else type(exc).__name__


def _execute_base(
    request: ActionRequest, trace_level: TraceLevel
) -> tuple[ActionOutcome, object]:
    from repro.core.manager import ActionStatus
    from repro.workloads.generator import general_case

    result = general_case(
        request.n, request.p, request.q, seed=request.seed,
        trace_level=trace_level,
    ).run(max_events=400_000)
    instance = result.manager.instance("A1")
    status = {
        ActionStatus.COMPLETED: "committed",
        ActionStatus.ABORTED: "aborted",
    }.get(instance.status, "stalled")
    handled = instance.handled_exception
    handlers = sum(
        1
        for participant in result.participants.values()
        for execution in participant.handler_log
        if execution.action == "A1"
    )
    return ActionOutcome(
        id=request.id, variant="base", status=status,
        exception=_exc_name(handled), handlers=handlers,
        messages=result.resolution_message_total(),
        sim_duration=result.duration,
    ), result.runtime


def _execute_ct(
    request: ActionRequest, trace_level: TraceLevel
) -> tuple[ActionOutcome, object]:
    from repro.core.crash_tolerant import run_crash_tolerant

    result = run_crash_tolerant(
        request.n, raisers=request.p, nested=request.q, seed=request.seed,
        run_until=80.0, trace_level=trace_level,
    )
    return _variant_outcome(
        request, "ct", result, result.all_survivors_handled(),
        result.handled_exceptions(), result.protocol_messages(),
    ), result.runtime


def _execute_mc(
    request: ActionRequest, trace_level: TraceLevel
) -> tuple[ActionOutcome, object]:
    from repro.core.multicast_variant import run_multicast_resolution

    result = run_multicast_resolution(
        request.n, p=request.p, q=request.q, seed=request.seed,
        trace_level=trace_level,
    )
    return _variant_outcome(
        request, "mc", result, result.all_handled(),
        result.handled_exceptions(), result.multicast_operations(),
    ), result.runtime


def _execute_cd(
    request: ActionRequest, trace_level: TraceLevel
) -> tuple[ActionOutcome, object]:
    from repro.core.centralized_variant import run_centralized

    result = run_centralized(
        request.n, raisers=request.p, seed=request.seed,
        trace_level=trace_level,
    )
    return _variant_outcome(
        request, "cd", result, result.all_handled(),
        result.handled_exceptions(), result.total_messages(),
    ), result.runtime


def _variant_outcome(
    request: ActionRequest, variant: str, result, all_handled: bool,
    handled_names: set, messages: int,
) -> ActionOutcome:
    handlers = sum(
        1 for p in result.participants.values() if p.handled is not None
    )
    exception = sorted(handled_names)[0] if handled_names else None
    status = "committed" if all_handled and handled_names else "stalled"
    return ActionOutcome(
        id=request.id, variant=variant, status=status, exception=exception,
        handlers=handlers, messages=messages,
        sim_duration=result.runtime.sim.now,
    )


_EXECUTORS = {
    "base": _execute_base,
    "ct": _execute_ct,
    "mc": _execute_mc,
    "cd": _execute_cd,
}


def execute_request(request: ActionRequest) -> ActionOutcome:
    """Run one action's resolution protocol to completion, synchronously.

    Deterministic given ``(variant, n, p, q, seed)`` — the service is a
    stateless resolution oracle, so retried requests are idempotent.
    """
    outcome, _runtime = _EXECUTORS[request.variant](request, TraceLevel.COUNTS)
    return outcome


def execute_request_traced(
    request: ActionRequest,
) -> tuple[ActionOutcome, list[dict]]:
    """Like :func:`execute_request`, but at FULL trace.

    Returns the outcome plus the engine's causal span forest as serialized
    records (virtual-time timestamps — see :func:`rescale_records` for
    mapping them onto a wall-clock window).
    """
    outcome, runtime = _EXECUTORS[request.variant](request, TraceLevel.FULL)
    return outcome, runtime.spans.to_records()


def rescale_records(
    records: list[dict], wall_start: float, wall_end: float, vt_end: float
) -> list[dict]:
    """Map virtual-time span records onto a wall-clock window, in place.

    The engine ran in virtual time ``[0, vt_end]`` during the wall window
    ``[wall_start, wall_end]``; each record's timestamps are scaled
    linearly onto that window so the engine forest nests correctly inside
    a wall-clock execute span.  The original virtual times are preserved
    as ``vt_start``/``vt_end`` attrs.
    """
    scale = (wall_end - wall_start) / vt_end if vt_end > 0 else 0.0
    for record in records:
        start = record.get("start")
        if not isinstance(start, (int, float)):
            continue
        attrs = record.setdefault("attrs", {})
        attrs["vt_start"] = start
        record["start"] = wall_start + start * scale
        end = record.get("end")
        if isinstance(end, (int, float)):
            attrs["vt_end"] = end
            record["end"] = wall_start + end * scale
    return records
