"""repro.service — the CA-action resolution protocol as a served workload.

A long-running server (:mod:`repro.service.server`) resolves CA actions
submitted by clients over length-prefixed TCP frames, with bounded
admission, slow-start rate adaptation and explicit overload shedding; an
open-loop traffic generator (:mod:`repro.service.loadgen`) drives it with
Poisson or bursty arrivals over a heavy-tailed action-size mix.

Quick start::

    python -m repro service serve --port 9400
    python -m repro service load --port 9400 --rate 800 --duration 10
"""

from repro.service.loadgen import (
    LoadReport,
    LoadSpec,
    fetch_server_stats,
    request_shutdown,
    run_load,
)
from repro.service.protocol import (
    MAX_PARTICIPANTS,
    SERVICE_VARIANTS,
    ActionOutcome,
    ActionRequest,
    ServiceProtocolError,
    execute_request,
)
from repro.service.server import ResolutionServer, TokenBucket

__all__ = [
    "ActionOutcome",
    "ActionRequest",
    "LoadReport",
    "LoadSpec",
    "MAX_PARTICIPANTS",
    "ResolutionServer",
    "SERVICE_VARIANTS",
    "ServiceProtocolError",
    "TokenBucket",
    "execute_request",
    "fetch_server_stats",
    "request_shutdown",
    "run_load",
]
