"""repro.service — the CA-action resolution protocol as a served workload.

A long-running server (:mod:`repro.service.server`) resolves CA actions
submitted by clients over length-prefixed TCP frames, with bounded
admission, slow-start rate adaptation and explicit overload shedding; an
open-loop traffic generator (:mod:`repro.service.loadgen`) drives it with
Poisson or bursty arrivals over a heavy-tailed action-size mix.

Every request can carry a distributed-trace context
(:class:`~repro.obs.spans.TraceContext`), stitching client send, admission
queue wait, engine execution and reply into one causal span forest; an
always-on :class:`~repro.service.flight.FlightRecorder` keeps the last K
request traces and dumps Chrome-trace artifacts when sheds, latency-budget
breaches, stalls or protocol errors fire.

Quick start::

    python -m repro service serve --port 9400
    python -m repro service load --port 9400 --rate 800 --duration 10
    python -m repro service trace --port 9400 --variant base -n 8
"""

from repro.service.flight import (
    TRIGGER_REASONS,
    FlightRecorder,
    RequestTrace,
)
from repro.service.loadgen import (
    CONTROL_TIMEOUT,
    LoadReport,
    LoadSpec,
    fetch_server_stats,
    request_shutdown,
    run_load,
    run_traced_requests,
)
from repro.service.protocol import (
    MAX_PARTICIPANTS,
    SERVICE_VARIANTS,
    ActionOutcome,
    ActionRequest,
    ServiceProtocolError,
    execute_request,
    execute_request_traced,
    rescale_records,
)
from repro.service.server import ResolutionServer, TokenBucket

__all__ = [
    "ActionOutcome",
    "ActionRequest",
    "CONTROL_TIMEOUT",
    "FlightRecorder",
    "LoadReport",
    "LoadSpec",
    "MAX_PARTICIPANTS",
    "RequestTrace",
    "ResolutionServer",
    "SERVICE_VARIANTS",
    "ServiceProtocolError",
    "TRIGGER_REASONS",
    "TokenBucket",
    "execute_request",
    "execute_request_traced",
    "fetch_server_stats",
    "request_shutdown",
    "rescale_records",
    "run_load",
    "run_traced_requests",
]
