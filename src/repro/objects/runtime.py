"""The distributed-object runtime.

Glues the kernel and network to objects and nodes: owns the simulator, the
network, the trace, the RNG registry and the membership service, and offers
a one-stop construction API for scenarios and examples.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.net.failures import FailureInjector, FailurePlan
from repro.net.latency import LatencyModel
from repro.net.membership import GroupMembership
from repro.net.multicast import ReliableMulticast
from repro.net.network import Network
from repro.objects.base import DistributedObject
from repro.objects.node import Node
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanCollector
from repro.simkernel.kernel import current_kernel_factory
from repro.simkernel.rng import RngRegistry
from repro.simkernel.scheduler import Simulator
from repro.simkernel.trace import TraceLevel, TraceRecorder


#: Hooks run at the end of every Runtime construction while installed.
#: Like the kernel seam, this exists because variant runners build their
#: Runtime internally: the TCP transport (repro.rt.tcp) uses it to attach
#: a socket bridge to runtimes it never sees constructed.
_runtime_hooks: tuple["RuntimeHook", ...] = ()

RuntimeHook = Callable[["Runtime"], None]


def current_runtime_hooks() -> tuple[RuntimeHook, ...]:
    return _runtime_hooks


@contextmanager
def runtime_hook(hook: RuntimeHook) -> Iterator[RuntimeHook]:
    """Run ``hook(runtime)`` on every Runtime built in scope."""
    global _runtime_hooks
    previous = _runtime_hooks
    _runtime_hooks = (*_runtime_hooks, hook)
    try:
        yield hook
    finally:
        _runtime_hooks = previous


class Runtime:
    """A complete simulated distributed system instance."""

    def __init__(
        self,
        seed: int = 0,
        latency: LatencyModel | None = None,
        failure_plan: FailurePlan | None = None,
        reliable: bool = False,
        ack_timeout: float = 5.0,
        max_retries: int = 60,
        trace_level: TraceLevel = TraceLevel.FULL,
    ) -> None:
        # The kernel seam (see repro.simkernel.kernel): the deterministic
        # Simulator by default, or whatever backend factory is installed —
        # e.g. repro.rt's AsyncioKernel for real-concurrency runs.
        factory = current_kernel_factory()
        self.sim = Simulator() if factory is None else factory()
        self.rng = RngRegistry(seed)
        self.trace = TraceRecorder(level=trace_level)
        #: Causal spans, collected only at FULL (COUNTS/OFF sweeps pay
        #: one pointer comparison per would-be emission).
        self.spans = SpanCollector(enabled=(trace_level is TraceLevel.FULL))
        #: Metrics registry: protocol engines push rare events; bulk
        #: network counters are pulled lazily by :meth:`metrics_snapshot`.
        self.metrics = MetricsRegistry()
        injector = FailureInjector(failure_plan, self.rng.stream("net.failures"))
        if reliable:
            from repro.net.reliable import ReliableNetwork

            self.network: Network = ReliableNetwork(
                self.sim, latency=latency, rng=self.rng, injector=injector,
                trace=self.trace, ack_timeout=ack_timeout,
                max_retries=max_retries,
            )
        else:
            self.network = Network(
                self.sim, latency=latency, rng=self.rng, injector=injector,
                trace=self.trace,
            )
        self.membership = GroupMembership()
        self.multicast = ReliableMulticast(self.network, self.membership)
        self.network.spans = self.spans if self.spans.enabled else None
        self.multicast.spans = self.network.spans
        self.nodes: dict[str, Node] = {}
        self.objects: dict[str, DistributedObject] = {}
        for hook in _runtime_hooks:
            hook(self)

    # -- topology -----------------------------------------------------------------

    def add_node(self, node_id: str) -> Node:
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id: {node_id}")
        node = Node(node_id)
        self.nodes[node_id] = node
        return node

    def node(self, node_id: str) -> Node:
        return self.nodes[node_id]

    def register(self, obj: DistributedObject, node_id: str | None = None) -> None:
        """Register an object, creating/choosing its node as needed.

        When ``node_id`` is ``None`` the object gets a dedicated node named
        after it — the fully distributed, one-object-per-machine layout the
        paper's analysis assumes.
        """
        if obj.name in self.objects:
            raise ValueError(f"duplicate object name: {obj.name}")
        node_id = node_id if node_id is not None else f"node:{obj.name}"
        node = self.nodes.get(node_id) or self.add_node(node_id)
        node.host(obj)
        self.objects[obj.name] = obj
        obj.attach(self)
        self.network.register(obj.name, obj.receive)

    def deregister(self, name: str) -> None:
        obj = self.objects.pop(name, None)
        if obj is None:
            return
        if obj.node is not None:
            obj.node.evict(name)
        self.network.unregister(name)

    def crash_node(self, node_id: str) -> None:
        """Crash a node now: its objects neither send nor receive from here on.

        Messages to (or in flight towards) crashed objects are lost, not
        errors — senders cannot know the destination died (no fail-stop
        assumption, paper Section 2).
        """
        from repro.net.failures import CrashWindow

        node = self.nodes[node_id]
        node.crashed = True
        for name in node.hosted_names():
            self.network.injector.plan.crashes.append(
                CrashWindow(name, self.sim.now)
            )
        self.trace.record(self.sim.now, "node.crash", node_id)
        if self.spans.enabled:
            self.spans.event(f"crash {node_id}", "crash", node_id, self.sim.now)
        self.metrics.counter("node.crashes").inc()

    def restart_node(self, node_id: str) -> None:
        """Restart a crashed node: its objects send and receive again.

        Closes the node's open crash windows at the current time, so the
        silence stays exact over ``[crash, restart)`` — messages sent into
        the window were lost forever; messages from here on flow.  Only
        the *node* comes back: volatile object state is whatever the
        object left in place, and reconstructing a protocol-consistent
        state from durable storage (WAL replay, rejoin) is the restarted
        object's own business.  No-op on a node that is not crashed.
        """
        from repro.net.failures import CrashWindow

        node = self.nodes[node_id]
        if not node.crashed:
            return
        node.crashed = False
        now = self.sim.now
        hosted = set(node.hosted_names())
        crashes = self.network.injector.plan.crashes
        for index, window in enumerate(crashes):
            if window.name in hosted and window.covers(now):
                crashes[index] = CrashWindow(window.name, window.start, now)
        self.trace.record(now, "node.restart", node_id)
        if self.spans.enabled:
            self.spans.event(f"restart {node_id}", "restart", node_id, now)
        self.metrics.counter("node.restarts").inc()

    # -- execution -------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = 200_000) -> None:
        """Run the simulation (with a default livelock budget for safety)."""
        self.sim.run(until=until, max_events=max_events)

    # -- observability -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """One picklable dict of every metric, pulling the bulk counters.

        Message/transport/multicast counts live on the network objects (the
        hot path never touches the registry); this folds them in as plain
        counters — idempotent, so snapshotting twice does not double-count.
        """
        metrics = self.metrics
        for kind, count in self.network.sent_by_kind.items():
            metrics.counter(f"msg.sent.{kind}").value = count
        for kind, count in self.network.delivered_by_kind.items():
            metrics.counter(f"msg.delivered.{kind}").value = count
        for attr in (
            "retransmissions", "transport_acks", "duplicates_dropped",
            "dead_letters",
        ):
            value = getattr(self.network, attr, None)
            if value is not None:
                metrics.counter(f"net.{attr}").value = value
        for kind, count in self.multicast.operations.items():
            metrics.counter(f"mcast.operations.{kind}").value = count
        if self.multicast.dead_letters:
            metrics.counter("mcast.dead_letters").value = (
                self.multicast.dead_letters
            )
        metrics.gauge("sim.now").set(self.sim.now)
        return metrics.snapshot()
