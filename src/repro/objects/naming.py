"""Object naming and ordering.

Section 4.1: "each object O_i has a unique number and all objects are
ordered (e.g. object names and the lexicographic ordering could be used).
Such ordering helps to dynamically identify a unique object amongst objects
which raised exceptions, and the chosen object will be responsible for
exception resolution."

We use plain string names ordered lexicographically.  :func:`canonical_name`
zero-pads indices so lexicographic and numeric order agree for generated
fleets of objects of any size.
"""

from __future__ import annotations


def canonical_name(index: int, prefix: str = "O", width: int = 4) -> str:
    """Name for the ``index``-th generated object, e.g. ``O0007``.

    Zero-padding makes lexicographic order match numeric order, so
    ``canonical_name(i) < canonical_name(j)`` iff ``i < j`` (for ``i, j``
    below ``10**width``).
    """
    if index < 0:
        raise ValueError(f"object index cannot be negative: {index}")
    if index >= 10**width:
        raise ValueError(f"index {index} does not fit in width {width}")
    return f"{prefix}{index:0{width}d}"


def name_sort_key(name: str) -> str:
    """Sort key for object names — lexicographic, per the paper."""
    return name


def biggest(names: list[str]) -> str:
    """The highest-ordered name: the resolver among raisers (Section 4.2)."""
    if not names:
        raise ValueError("cannot pick the biggest of no names")
    return max(names, key=name_sort_key)
