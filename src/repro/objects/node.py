"""Network nodes.

A node hosts distributed objects.  Nodes exist so failure injection can be
expressed at the hardware grain the paper assumes (node crashes take down
every object hosted there) and so examples can place cooperating objects on
distinct machines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.objects.base import DistributedObject


class Node:
    """One machine in the simulated distributed system."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.objects: dict[str, "DistributedObject"] = {}
        self.crashed = False

    def host(self, obj: "DistributedObject") -> None:
        if obj.name in self.objects:
            raise ValueError(f"node {self.node_id} already hosts {obj.name}")
        self.objects[obj.name] = obj
        obj.node = self

    def evict(self, name: str) -> None:
        obj = self.objects.pop(name, None)
        if obj is not None:
            obj.node = None

    def hosted_names(self) -> list[str]:
        return sorted(self.objects)

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"Node({self.node_id}, {state}, objects={self.hosted_names()})"
