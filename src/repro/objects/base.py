"""Base class of distributed objects.

A :class:`DistributedObject` receives messages through its runtime and
dispatches them by ``kind`` to registered handlers.  Protocol engines (the
resolution algorithm, the transaction manager's client side, remote
invocation) are layered on objects by registering their own kinds, so the
application-visible object stays a plain class — the paper's requirement
that the resolution mechanism be "transparent to programmers" (Section 4.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.objects.node import Node
    from repro.objects.runtime import Runtime

KindHandler = Callable[[Message], None]


class DistributedObject:
    """A named object bound to a node, communicating by messages only."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.node: "Node | None" = None
        self.runtime: "Runtime | None" = None
        self._kind_handlers: dict[str, KindHandler] = {}

    # -- wiring -----------------------------------------------------------------

    def attach(self, runtime: "Runtime") -> None:
        """Called by the runtime when the object is registered."""
        self.runtime = runtime

    def on_kind(self, kind: str, handler: KindHandler) -> None:
        """Register the handler for messages of ``kind``."""
        if kind in self._kind_handlers:
            raise ValueError(f"{self.name}: kind {kind} already handled")
        self._kind_handlers[kind] = handler

    # -- messaging ----------------------------------------------------------------

    def send(self, dst: str, kind: str, payload: object = None) -> Message:
        """Send a message to another object by name."""
        if self.runtime is None:
            raise RuntimeError(f"{self.name} is not attached to a runtime")
        return self.runtime.network.send(self.name, dst, kind, payload)

    def receive(self, message: Message) -> None:
        """Entry point called by the network; dispatches by kind."""
        handler = self._kind_handlers.get(message.kind)
        if handler is None:
            self.on_unhandled(message)
            return
        handler(message)

    def on_unhandled(self, message: Message) -> None:
        """Hook for messages with no registered kind handler.

        The default is loud failure — silent message loss hides protocol
        bugs.  Subclasses with intentional drop semantics override this.
        """
        raise RuntimeError(
            f"{self.name} received unhandled message kind {message.kind!r} "
            f"from {message.src}"
        )

    # -- convenience ------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        """True once this object's node has crashed (halt semantics for
        local activity is the object's responsibility — timers cannot be
        revoked generically, so long-running components check this flag)."""
        return self.node is not None and self.node.crashed

    @property
    def sim_now(self) -> float:
        if self.runtime is None:
            raise RuntimeError(f"{self.name} is not attached to a runtime")
        return self.runtime.sim.now

    def __repr__(self) -> str:
        where = self.node.node_id if self.node else "unplaced"
        return f"{type(self).__name__}({self.name}@{where})"
