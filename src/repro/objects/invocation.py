"""Remote method invocation.

Objects expose *operations*; other objects invoke them by name with a
request/reply message pair.  This is the ordinary application-level
communication of the paper's OO model ("application-related message passing
is treated independently", Section 4.1): invocation messages use their own
kinds and are therefore never confused with resolution-protocol traffic in
the benchmark counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.net.message import Message
from repro.objects.base import DistributedObject

KIND_REQUEST = "RMI_REQUEST"
KIND_REPLY = "RMI_REPLY"

#: Kinds used by remote invocation (excluded from resolution counts).
INVOCATION_KINDS = {KIND_REQUEST, KIND_REPLY}


class InvocationError(RuntimeError):
    """The remote operation raised or does not exist."""


@dataclass
class _Request:
    call_id: int
    operation: str
    args: tuple
    kwargs: dict


@dataclass
class _Reply:
    call_id: int
    value: Any = None
    error: str | None = None


class RemoteInvoker:
    """Adds RMI capability to a distributed object.

    Usage::

        invoker = RemoteInvoker(obj)
        invoker.expose("deposit", account.deposit)
        invoker.call("O2", "balance", on_result=print)
    """

    _call_ids = itertools.count(1)

    def __init__(self, obj: DistributedObject) -> None:
        self.obj = obj
        self._operations: dict[str, Callable[..., Any]] = {}
        self._pending: dict[int, Callable[[Any], None]] = {}
        self._error_handlers: dict[int, Callable[[str], None]] = {}
        obj.on_kind(KIND_REQUEST, self._on_request)
        obj.on_kind(KIND_REPLY, self._on_reply)

    def expose(self, operation: str, fn: Callable[..., Any]) -> None:
        """Make ``fn`` remotely callable as ``operation``."""
        if operation in self._operations:
            raise ValueError(f"operation already exposed: {operation}")
        self._operations[operation] = fn

    def call(
        self,
        dst: str,
        operation: str,
        *args: Any,
        on_result: Callable[[Any], None] | None = None,
        on_error: Callable[[str], None] | None = None,
        **kwargs: Any,
    ) -> int:
        """Invoke ``operation`` on object ``dst``; returns the call id.

        Results arrive asynchronously through ``on_result`` (the simulation
        is event-driven; there is no blocking).  Remote errors arrive
        through ``on_error``, or raise :class:`InvocationError` at reply
        time if no error callback was given.
        """
        call_id = next(self._call_ids)
        if on_result is not None:
            self._pending[call_id] = on_result
        if on_error is not None:
            self._error_handlers[call_id] = on_error
        self.obj.send(dst, KIND_REQUEST, _Request(call_id, operation, args, kwargs))
        return call_id

    def _on_request(self, message: Message) -> None:
        request: _Request = message.payload
        fn = self._operations.get(request.operation)
        if fn is None:
            reply = _Reply(request.call_id, error=f"no such operation: {request.operation}")
        else:
            try:
                reply = _Reply(request.call_id, value=fn(*request.args, **request.kwargs))
            except Exception as exc:  # deliberate: remote errors are data
                reply = _Reply(request.call_id, error=f"{type(exc).__name__}: {exc}")
        self.obj.send(message.src, KIND_REPLY, reply)

    def _on_reply(self, message: Message) -> None:
        reply: _Reply = message.payload
        on_result = self._pending.pop(reply.call_id, None)
        on_error = self._error_handlers.pop(reply.call_id, None)
        if reply.error is not None:
            if on_error is not None:
                on_error(reply.error)
                return
            raise InvocationError(reply.error)
        if on_result is not None:
            on_result(reply.value)
