"""Distributed object-oriented runtime.

Objects live on nodes and communicate only by message passing (paper
Section 2: "objects that run on network nodes communicate with each other by
message passing").  The runtime routes object-to-object messages over the
simulated network, supports remote method invocation, and provides the
total ordering of object names that the resolution algorithm uses to elect
a resolver ("object names and the lexicographic ordering could be used",
Section 4.1).
"""

from repro.objects.base import DistributedObject
from repro.objects.invocation import InvocationError, RemoteInvoker
from repro.objects.naming import canonical_name, name_sort_key
from repro.objects.node import Node
from repro.objects.runtime import Runtime

__all__ = [
    "DistributedObject",
    "InvocationError",
    "Node",
    "RemoteInvoker",
    "Runtime",
    "canonical_name",
    "name_sort_key",
]
