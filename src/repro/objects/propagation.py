"""Exception propagation along distributed call chains (paper Section 2.3).

"Object/class exception propagation is another important topic.  Lore,
Eiffel and Guide propagate exceptions through the call chain.  To do
this, the exception context is associated not only with the method
execution but also with the object/class itself."

:class:`PropagatingObject` implements that model over the message-passing
runtime: an operation may *delegate* part of its work to another object
(building a distributed call chain), and an exception raised anywhere in
the chain searches for a handler at each level on the way back up —
first in the raising object's method/object/class contexts, then in its
caller's, and so on.  An exception that escapes the chain's root surfaces
to the original client as a failure.

Handlers here are *substitution* handlers (resumption-flavoured at the
call boundary): a handler maps the exception to a replacement result for
the failed call, after which normal computation continues upward — the
behaviour the surveyed sequential OO languages give their callers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.exceptions.tree import ExceptionClass
from repro.net.message import Message
from repro.objects.base import DistributedObject

KIND_PROP_CALL = "PROP_CALL"
KIND_PROP_REPLY = "PROP_REPLY"

PROPAGATION_KINDS = frozenset({KIND_PROP_CALL, KIND_PROP_REPLY})

#: A substitution handler: exception class -> replacement result.
SubstitutionHandler = Callable[[ExceptionClass], Any]
#: An operation body: (*args) -> plain result, or a Delegate, or raise.
OperationBody = Callable[..., Any]


@dataclass(frozen=True)
class Delegate:
    """Returned by an operation to continue the call chain elsewhere.

    ``post`` (optional) transforms the delegate's result before this
    level replies upward.
    """

    target: str
    operation: str
    args: tuple = ()
    post: Optional[Callable[[Any], Any]] = None


@dataclass(frozen=True)
class _PropCall:
    call_id: int
    operation: str
    args: tuple


@dataclass(frozen=True)
class _PropReply:
    call_id: int
    value: Any = None
    exception: Optional[ExceptionClass] = None


@dataclass
class _PendingDelegate:
    reply_to: Optional[str]            # upstream caller (None = local root)
    upstream_call_id: int
    operation: str                     # our method context for handlers
    post: Optional[Callable[[Any], Any]]
    on_result: Optional[Callable[[Any], None]] = None
    on_failure: Optional[Callable[[ExceptionClass], None]] = None


class PropagatingObject(DistributedObject):
    """A distributed object with call-chain exception propagation."""

    #: Class-level handlers, shared by every instance of a subclass —
    #: "exceptions are associated with types" (Section 2.3).
    class_handlers: dict[ExceptionClass, SubstitutionHandler] = {}

    _call_ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        operations: dict[str, OperationBody],
        object_handlers: dict[ExceptionClass, SubstitutionHandler] | None = None,
        method_handlers: dict[str, dict[ExceptionClass, SubstitutionHandler]] | None = None,
        compute_time: float = 1.0,
    ) -> None:
        super().__init__(name)
        self.operations = dict(operations)
        self.object_handlers = dict(object_handlers or {})
        self.method_handlers = {
            m: dict(hs) for m, hs in (method_handlers or {}).items()
        }
        self.compute_time = compute_time
        self._pending: dict[int, _PendingDelegate] = {}
        #: (operation, exception name, level) of handled exceptions.
        self.handled_log: list[tuple[str, str, str]] = []
        self.on_kind(KIND_PROP_CALL, self._on_call)
        self.on_kind(KIND_PROP_REPLY, self._on_reply)

    # -- client API ----------------------------------------------------------

    def call(
        self,
        target: str,
        operation: str,
        *args: Any,
        on_result: Callable[[Any], None] | None = None,
        on_failure: Callable[[ExceptionClass], None] | None = None,
    ) -> int:
        """Start a call chain from this object."""
        call_id = next(self._call_ids)
        self._pending[call_id] = _PendingDelegate(
            reply_to=None, upstream_call_id=call_id, operation="<client>",
            post=None, on_result=on_result, on_failure=on_failure,
        )
        self.send(target, KIND_PROP_CALL, _PropCall(call_id, operation, args))
        return call_id

    # -- serving calls --------------------------------------------------------------

    def _on_call(self, message: Message) -> None:
        request: _PropCall = message.payload
        caller = message.src

        def execute() -> None:
            body = self.operations.get(request.operation)
            try:
                if body is None:
                    raise LookupError(f"no operation {request.operation}")
                value = body(*request.args)
            except Exception as exc:
                self._handle_or_propagate(
                    type(exc), request.operation, caller, request.call_id
                )
                return
            if isinstance(value, Delegate):
                downstream_id = next(self._call_ids)
                self._pending[downstream_id] = _PendingDelegate(
                    reply_to=caller,
                    upstream_call_id=request.call_id,
                    operation=request.operation,
                    post=value.post,
                )
                self.send(
                    value.target,
                    KIND_PROP_CALL,
                    _PropCall(downstream_id, value.operation, value.args),
                )
                return
            self.send(
                caller, KIND_PROP_REPLY, _PropReply(request.call_id, value=value)
            )

        self.runtime.sim.schedule(
            self.compute_time, execute, label=f"prop:{self.name}"
        )

    # -- replies coming back up the chain ----------------------------------------------

    def _on_reply(self, message: Message) -> None:
        reply: _PropReply = message.payload
        pending = self._pending.pop(reply.call_id, None)
        if pending is None:
            return
        if reply.exception is not None:
            # The callee (or something below it) failed and nothing down
            # there handled it: this level's contexts are searched next.
            self._resolve_upward(reply.exception, pending)
            return
        value = reply.value
        if pending.post is not None:
            try:
                value = pending.post(value)
            except Exception as exc:
                self._resolve_upward(type(exc), pending)
                return
        self._deliver_up(pending, value)

    def _deliver_up(self, pending: _PendingDelegate, value: Any) -> None:
        if pending.reply_to is None:
            if pending.on_result is not None:
                pending.on_result(value)
            return
        self.send(
            pending.reply_to,
            KIND_PROP_REPLY,
            _PropReply(pending.upstream_call_id, value=value),
        )

    # -- handler search -------------------------------------------------------------

    def _lookup(
        self, exception: ExceptionClass, method: str
    ) -> Optional[tuple[SubstitutionHandler, str]]:
        """Method > object > class precedence (Section 2.3)."""
        bound = self.method_handlers.get(method, {})
        if exception in bound:
            return bound[exception], "method"
        if exception in self.object_handlers:
            return self.object_handlers[exception], "object"
        if exception in type(self).class_handlers:
            return type(self).class_handlers[exception], "class"
        return None

    def _handle_or_propagate(
        self,
        exception: ExceptionClass,
        method: str,
        caller: str,
        call_id: int,
    ) -> None:
        found = self._lookup(exception, method)
        if found is not None:
            handler, level = found
            self.handled_log.append((method, exception.__name__, level))
            self.trace_handled(method, exception, level)
            self.send(
                caller,
                KIND_PROP_REPLY,
                _PropReply(call_id, value=handler(exception)),
            )
            return
        # Unhandled here: propagate through the call chain.
        self.send(
            caller, KIND_PROP_REPLY, _PropReply(call_id, exception=exception)
        )

    def _resolve_upward(
        self, exception: ExceptionClass, pending: _PendingDelegate
    ) -> None:
        found = self._lookup(exception, pending.operation)
        if found is not None:
            handler, level = found
            self.handled_log.append(
                (pending.operation, exception.__name__, level)
            )
            self.trace_handled(pending.operation, exception, level)
            self._deliver_up(pending, handler(exception))
            return
        if pending.reply_to is None:
            # Escaped the chain root: surfaces to the client callback.
            if pending.on_failure is not None:
                pending.on_failure(exception)
                return
            raise RuntimeError(
                f"{self.name}: unhandled {exception.__name__} escaped the "
                "call chain with no failure callback"
            )
        self.send(
            pending.reply_to,
            KIND_PROP_REPLY,
            _PropReply(pending.upstream_call_id, exception=exception),
        )

    def trace_handled(self, method, exception, level) -> None:
        if self.runtime is not None:
            self.runtime.trace.record(
                self.sim_now, "prop.handled", self.name,
                method=method, exception=exception.__name__, level=level,
            )
